"""Tests for nn.Module layers: shapes, parameter registration, train/eval modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestModuleBase:
    def test_parameter_registration_and_count(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        names = [n for n, _ in model.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(4, 4, rng=rng), nn.BatchNorm1d(4))
        state = model.state_dict()
        clone = nn.Sequential(nn.Linear(4, 4, rng=np.random.default_rng(7)), nn.BatchNorm1d(4))
        clone.load_state_dict(state)
        for (name_a, p_a), (name_b, p_b) in zip(model.named_parameters(), clone.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(p_a.data, p_b.data)

    def test_load_state_dict_shape_mismatch(self):
        model = nn.Linear(3, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_missing_key(self):
        model = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Sequential(nn.Dropout(0.2)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = nn.Linear(3, 2)
        out = model(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.parameters())) == 6
        with pytest.raises(RuntimeError):
            layers(Tensor(np.ones((1, 2))))


class TestLinearConv:
    def test_linear_forward_shape_and_error(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((7, 4))))

    def test_linear_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_conv_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = conv(Tensor(np.random.default_rng(0).standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_conv_invalid_args(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 8, 0)


class TestNorms:
    def test_batchnorm2d_normalises_training_batch(self):
        rng = np.random.default_rng(0)
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)) * 3.0 + 2.0)
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-6
        assert abs(float(out.data.std()) - 1.0) < 1e-2

    def test_batchnorm_running_stats_used_in_eval(self):
        rng = np.random.default_rng(0)
        bn = nn.BatchNorm1d(3)
        for _ in range(50):
            bn(Tensor(rng.standard_normal((32, 3)) * 2.0 + 5.0))
        bn.eval()
        x = Tensor(rng.standard_normal((256, 3)) * 2.0 + 5.0)
        out = bn(x)
        # eval-mode output should be roughly standardised using running stats
        assert abs(float(out.data.mean())) < 0.25
        assert 0.7 < float(out.data.std()) < 1.3

    def test_batchnorm_shape_checks(self):
        bn = nn.BatchNorm2d(4)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 3, 4, 4))))
        with pytest.raises(ValueError):
            nn.BatchNorm1d(4)(Tensor(np.zeros((2, 3, 4, 4))))

    def test_layernorm_normalises_last_axis(self):
        rng = np.random.default_rng(0)
        ln = nn.LayerNorm(16)
        x = Tensor(rng.standard_normal((4, 7, 16)) * 5 + 3)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_wrong_width(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(8)(Tensor(np.zeros((2, 4))))

    def test_batchnorm_gradients_flow(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 2, 3, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.weight.grad is not None


class TestActivationsDropout:
    def test_activation_shapes(self):
        x = Tensor(np.linspace(-2, 2, 12).reshape(3, 4))
        for act in [nn.ReLU(), nn.LeakyReLU(), nn.Tanh(), nn.Sigmoid(), nn.GELU(), nn.Softmax()]:
            assert act(x).shape == (3, 4)

    def test_gelu_values(self):
        x = Tensor(np.array([0.0, 1.0, -1.0]))
        out = nn.GELU()(x).data
        np.testing.assert_allclose(out[0], 0.0, atol=1e-8)
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)

    def test_dropout_module_respects_mode(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((50, 50)))
        train_out = drop(x)
        assert (train_out.data == 0).any()
        drop.eval()
        eval_out = drop(x)
        np.testing.assert_allclose(eval_out.data, x.data)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestPoolingFlatten:
    def test_pooling_modules(self):
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.AvgPool2d(4)(x).shape == (2, 3, 2, 2)
        assert nn.GlobalAvgPool2d()(x).shape == (2, 3)
        assert nn.Flatten()(x).shape == (2, 3 * 8 * 8)


class TestAttention:
    def test_self_attention_shapes(self):
        rng = np.random.default_rng(0)
        attn = nn.MultiHeadSelfAttention(16, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_embed_dim_must_divide(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)

    def test_attention_mask_blocks_padding(self):
        rng = np.random.default_rng(0)
        attn = nn.MultiHeadSelfAttention(8, 2, rng=rng)
        x_data = rng.standard_normal((1, 4, 8))
        mask = np.array([[1, 1, 0, 0]])
        out_masked = attn(Tensor(x_data), attention_mask=mask).data
        # Changing a masked (padded) position must not affect unmasked outputs.
        x_data2 = x_data.copy()
        x_data2[0, 3] += 100.0
        out_masked2 = attn(Tensor(x_data2), attention_mask=mask).data
        np.testing.assert_allclose(out_masked[0, :2], out_masked2[0, :2], atol=1e-8)

    def test_attention_mask_shape_check(self):
        attn = nn.MultiHeadSelfAttention(8, 2)
        x = Tensor(np.zeros((2, 4, 8)))
        with pytest.raises(ValueError):
            attn(x, attention_mask=np.ones((2, 5)))

    def test_encoder_layer_gradients_flow(self):
        rng = np.random.default_rng(0)
        layer = nn.TransformerEncoderLayer(8, 2, 16, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in layer.parameters())
