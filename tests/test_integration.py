"""End-to-end integration tests: the full pipeline on small-but-real workloads.

These are the slowest tests in the suite (a few seconds each); they verify the
qualitative claims the library is built to reproduce rather than individual
units.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data import ArrayDataset, DataLoader
from repro.models import MLP
from repro.optim import SGD
from repro.schedules import REXSchedule, build_schedule
from repro.training import ClassificationTask, LRRecorder, Trainer
from repro.experiments import RunConfig, run_setting_table, run_single, average_rank_by_budget


def gaussian_blobs(n=256, features=12, classes=4, noise=1.8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((classes, features)) * 2.0
    labels = rng.integers(0, classes, size=n)
    x = centers[labels] + rng.standard_normal((n, features)) * noise
    return x, labels


class TestQuickstartLoop:
    def test_manual_training_loop_with_rex(self):
        """The README quickstart pattern: schedule.step() -> backward -> optimizer.step()."""
        x, y = gaussian_blobs()
        ds = ArrayDataset(x, y)
        loader = DataLoader(ds, batch_size=32, shuffle=True, seed=0)
        model = MLP(12, 4, hidden_sizes=(32,), seed=0)
        optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9)
        total_steps = 80
        schedule = REXSchedule(optimizer, total_steps=total_steps)

        losses = []
        batches = iter(loader)
        for step in range(total_steps):
            try:
                images, labels = next(batches)
            except StopIteration:
                batches = iter(loader)
                images, labels = next(batches)
            schedule.step()
            logits = model(nn.Tensor(images))
            loss = nn.losses.cross_entropy(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))

        assert np.mean(losses[-10:]) < np.mean(losses[:10])
        assert optimizer.get_lr() < 0.2 * 0.1  # decayed near zero by the end


class TestScheduleQuality:
    def test_decayed_schedules_beat_constant_lr(self):
        """Any decaying schedule should match or beat the no-decay baseline on a noisy task."""
        x, y = gaussian_blobs(n=384, noise=2.5, seed=1)
        ds = ArrayDataset(x, y)

        def final_error(schedule_name: str) -> float:
            train = DataLoader(ds, batch_size=16, shuffle=True, seed=0)
            eval_loader = DataLoader(ds, batch_size=64, seed=0)
            model = MLP(12, 4, hidden_sizes=(32,), seed=0)
            opt = SGD(model.parameters(), lr=0.5, momentum=0.9)
            sched = build_schedule(schedule_name, opt, total_steps=150)
            trainer = Trainer(model, opt, ClassificationTask(), train, eval_loader, schedule=sched)
            return trainer.fit(150).final_metrics["error"]

        constant = final_error("none")
        rex = final_error("rex")
        linear = final_error("linear")
        assert rex <= constant + 1.0
        assert linear <= constant + 1.0

    def test_lr_recorder_reproduces_rex_curve_during_real_training(self):
        x, y = gaussian_blobs(n=64)
        ds = ArrayDataset(x, y)
        train = DataLoader(ds, batch_size=16, shuffle=True, seed=0)
        model = MLP(12, 4, seed=0)
        opt = SGD(model.parameters(), lr=0.3, momentum=0.9)
        sched = REXSchedule(opt, total_steps=40)
        recorder = LRRecorder()
        Trainer(model, opt, ClassificationTask(), train, schedule=sched, callbacks=[recorder]).fit(40)
        np.testing.assert_allclose(
            recorder.curve(), REXSchedule(None, total_steps=40, base_lr=0.3).sequence()
        )


class TestHarnessEndToEnd:
    def test_mini_paper_pipeline(self):
        """A miniature Figure 1: run two schedules on one setting and rank them."""
        store = run_setting_table(
            "RN20-CIFAR10",
            schedules=("rex", "none"),
            optimizers=("sgdm",),
            budgets=(0.25, 1.0),
            num_seeds=1,
            size_scale=0.2,
            epoch_scale=0.15,
        )
        assert len(store) == 4
        ranks = average_rank_by_budget(store, optimizer="sgdm")
        assert set(ranks) == {"rex", "none"}
        for by_budget in ranks.values():
            assert set(by_budget) == {0.25, 1.0}

    def test_more_budget_does_not_hurt(self):
        """Across a 10x budget increase the final error should not get worse (proxy sanity)."""
        small = run_single(
            RunConfig(
                setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.05,
                size_scale=0.25, epoch_scale=0.5,
            )
        )
        large = run_single(
            RunConfig(
                setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.5,
                size_scale=0.25, epoch_scale=0.5,
            )
        )
        assert large.metric <= small.metric + 2.0
