"""The ``repro history record|show|digest`` command group, end to end."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import main


def write_config(tmp_path: Path, artifact: str, **extra) -> Path:
    path = tmp_path / "subs.json"
    payload = {
        "subscriptions": [
            {"name": "cli-sub", "artifacts": [artifact], "scale": "micro", "cadence": "always"}
        ],
        **extra,
    }
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def recorded(tmp_path, make_micro_artifact, capsys):
    """A history file with two recorded runs of one micro artifact."""
    make_micro_artifact("clihist")
    config = write_config(tmp_path, "clihist")
    history = tmp_path / "h.jsonl"
    cache = tmp_path / "cache"
    argv = [
        "history",
        "record",
        "--config",
        str(config),
        "--history",
        str(history),
        "--cache-dir",
        str(cache),
    ]
    assert main(argv) == 0
    assert main(argv) == 0
    capsys.readouterr()
    return history


class TestRecord:
    def test_two_runs_append_without_rewriting(self, tmp_path, make_micro_artifact, capsys):
        make_micro_artifact("clirec")
        config = write_config(tmp_path, "clirec")
        history = tmp_path / "h.jsonl"
        argv = [
            "history",
            "record",
            "--config",
            str(config),
            "--history",
            str(history),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 row(s) appended" in out
        first_bytes = history.read_bytes()
        assert main(argv) == 0
        assert history.read_bytes()[: len(first_bytes)] == first_bytes
        assert len(history.read_text().splitlines()) == 2

    def test_history_path_defaults_from_config(self, tmp_path, make_micro_artifact, capsys, monkeypatch):
        make_micro_artifact("clicfg")
        monkeypatch.chdir(tmp_path)
        config = write_config(tmp_path, "clicfg", history="from-config.jsonl")
        argv = [
            "history",
            "record",
            "--config",
            str(config),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "from-config.jsonl").is_file()

    def test_missing_config_is_a_one_line_error(self, tmp_path, capsys):
        code = main(["history", "record", "--config", str(tmp_path / "absent.yaml")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_artifact_is_a_one_line_error(self, tmp_path, capsys):
        config = write_config(tmp_path, "definitely-not-registered")
        code = main(
            [
                "history",
                "record",
                "--config",
                str(config),
                "--history",
                str(tmp_path / "h.jsonl"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestShow:
    def test_show_renders_markdown(self, recorded, capsys):
        assert main(["history", "show", "--history", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert "# Drift history" in out
        assert "clihist" in out

    def test_show_without_history_errors(self, tmp_path, capsys):
        code = main(["history", "show", "--history", str(tmp_path / "none.jsonl")])
        assert code == 2
        assert "no history" in capsys.readouterr().err


class TestDigest:
    def test_digest_writes_deterministic_html(self, recorded, tmp_path, capsys):
        out_file = tmp_path / "digest.html"
        argv = ["history", "digest", "--history", str(recorded), "--out", str(out_file)]
        assert main(argv) == 0
        first = out_file.read_bytes()
        assert main(argv) == 0
        assert out_file.read_bytes() == first
        assert first.startswith(b"<!DOCTYPE html>")
        assert b"clihist" in first

    def test_digest_prints_to_stdout_without_out(self, recorded, capsys):
        assert main(["history", "digest", "--history", str(recorded)]) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")
