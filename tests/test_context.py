"""Tests for :class:`ExecutionContext` and the legacy-kwarg compatibility shim.

The API contract under test: every public runner accepts ``context=``, the old
per-runner execution kwargs still work for one release behind a
``DeprecationWarning``, mixing the two spellings is a ``TypeError``, and both
spellings produce record-identical stores.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    ExecutionContext,
    InMemoryRunCache,
    execute_artifact,
    get_artifact,
    resolve_scale,
    run_budget_sweep,
    run_setting_table,
    run_single,
)
from repro.execution import HTTPRunCache, RunCache
from repro.execution.context import context_from_legacy, resolve_cache_spec
from repro.experiments.grid import tune_learning_rate
from repro.experiments.runner import RunConfig

TINY = dict(size_scale=0.12, epoch_scale=0.1)

SWEEP = dict(
    setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budgets=(0.25,), seeds=(0,), **TINY
)


def stores_equal(a, b) -> bool:
    return [r.to_dict() for r in a] == [r.to_dict() for r in b]


class TestExecutionContext:
    def test_defaults(self):
        context = ExecutionContext()
        assert context.workers == 1 and context.cache is None
        assert context.executor == "auto" and context.queue_inline

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionContext(workers=0)
        with pytest.raises(ValueError):
            ExecutionContext(retries=-1)
        with pytest.raises(ValueError):
            ExecutionContext(executor="carrier-pigeon")

    def test_frozen_with_replace(self):
        context = ExecutionContext()
        with pytest.raises(dataclasses.FrozenInstanceError):
            context.workers = 4
        assert context.replace(workers=4).workers == 4
        assert context.workers == 1

    def test_resolve_cache_spec(self, tmp_path):
        assert resolve_cache_spec(None) is None
        assert isinstance(resolve_cache_spec(tmp_path / "c"), RunCache)
        assert isinstance(resolve_cache_spec(str(tmp_path / "c")), RunCache)
        assert isinstance(resolve_cache_spec("http://127.0.0.1:8766"), HTTPRunCache)
        memo = InMemoryRunCache()
        assert resolve_cache_spec(memo) is memo
        with pytest.raises(TypeError):
            resolve_cache_spec(42)

    def test_resolve_queue(self, tmp_path):
        from repro.execution import WorkQueue

        assert ExecutionContext().resolve_queue() is None
        resolved = ExecutionContext(queue=tmp_path / "q.sqlite").resolve_queue()
        assert isinstance(resolved, WorkQueue)
        queue = WorkQueue(tmp_path / "q2.sqlite")
        assert ExecutionContext(queue=queue).resolve_queue() is queue

    def test_from_env_reads_documented_variables(self, tmp_path):
        environ = {
            "REPRO_BENCH_WORKERS": "3",
            "REPRO_BENCH_CACHE_DIR": str(tmp_path / "cache"),
            "REPRO_PLAN": "0",
            "REPRO_DTYPE": "float32",
            "REPRO_EXECUTOR": "serial",
            "REPRO_QUEUE": str(tmp_path / "q.sqlite"),
            "REPRO_BATCH_SEEDS": "yes",
        }
        context = ExecutionContext.from_env(environ)
        assert context.workers == 3
        assert context.cache == str(tmp_path / "cache")
        assert context.plan is False and context.dtype == "float32"
        assert context.executor == "serial" and context.batch_seeds
        assert context.queue == str(tmp_path / "q.sqlite")

    def test_from_env_empty_and_overrides(self):
        assert ExecutionContext.from_env({}) == ExecutionContext()
        context = ExecutionContext.from_env({"REPRO_BENCH_WORKERS": "3"}, workers=7)
        assert context.workers == 7  # explicit override wins

    def test_from_env_accepts_url_cache(self):
        context = ExecutionContext.from_env({"REPRO_BENCH_CACHE_DIR": "http://127.0.0.1:8766"})
        assert isinstance(context.resolve_cache(), HTTPRunCache)


class TestLegacyShim:
    def test_context_passthrough(self):
        context = ExecutionContext(workers=2)
        assert context_from_legacy(context, "caller") is context

    def test_no_args_builds_default(self):
        assert context_from_legacy(None, "caller") == ExecutionContext()

    def test_legacy_kwarg_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="max_workers= .use ExecutionContext.workers."):
            context = context_from_legacy(None, "caller", max_workers=2)
        assert context.workers == 2

    def test_both_spellings_raise(self):
        with pytest.raises(TypeError, match="both context= and legacy"):
            context_from_legacy(ExecutionContext(), "caller", max_workers=2)

    def test_unknown_legacy_kwarg_raises(self):
        with pytest.raises(TypeError, match="unexpected legacy kwarg"):
            context_from_legacy(None, "caller", warp_factor=9)

    def test_runner_equivalence_and_warning(self, tmp_path):
        """Legacy and context spellings of run_budget_sweep are record-identical."""
        with pytest.warns(DeprecationWarning, match="run_budget_sweep"):
            legacy = run_budget_sweep(**SWEEP, cache_dir=tmp_path / "a")
        modern = run_budget_sweep(**SWEEP, context=ExecutionContext(cache=tmp_path / "b"))
        assert stores_equal(legacy, modern)

    def test_runner_both_spellings_raise(self, tmp_path):
        with pytest.raises(TypeError, match="run_budget_sweep.. got both"):
            run_budget_sweep(**SWEEP, max_workers=1, context=ExecutionContext())

    def test_run_single_applies_context_dtype(self):
        config = RunConfig(
            setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25, **TINY
        )
        baseline = run_single(config)
        via_context = run_single(config, context=ExecutionContext(dtype="float64"))
        assert via_context.to_dict() == baseline.to_dict()

    def test_setting_table_and_tuner_accept_context(self):
        context = ExecutionContext(cache=InMemoryRunCache())
        store = run_setting_table(
            "RN20-CIFAR10",
            schedules=("rex",),
            optimizers=("sgdm",),
            budgets=(0.25,),
            context=context,
            **TINY,
        )
        assert len(store) == 1
        config = RunConfig(
            setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25, **TINY
        )
        tuning = tune_learning_rate(config, num_steps=1, context=context)
        assert tuning.best_lr > 0 and len(tuning.all_records) == 3

    def test_execute_artifact_accepts_context_and_legacy(self):
        artifact = get_artifact("table4")
        scale = resolve_scale("micro", seeds=(0,))
        memo = InMemoryRunCache()
        store, report = execute_artifact(artifact, scale, context=ExecutionContext(cache=memo))
        with pytest.warns(DeprecationWarning, match="execute_artifact"):
            store2, report2 = execute_artifact(artifact, scale, cache=memo)
        assert stores_equal(store, store2)
        # the warm second pass performs zero training: every cell is a hit
        assert report2.executed == 0 and report2.cache_hits == report.executed + report.cache_hits


class TestStableAPI:
    def test_api_module_surface(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_engine_accepts_context(self):
        from repro.execution import ExperimentEngine

        engine = ExperimentEngine(context=ExecutionContext(workers=2, retries=3))
        assert engine.max_workers == 2 and engine.retries == 3
