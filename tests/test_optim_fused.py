"""Fused-vs-reference optimizer equivalence tests.

The optimizers perform fused in-place buffer updates (no per-step
allocations).  This file keeps straightforward, allocating reference
implementations of the same update rules and asserts the fused steps track
them to tight tolerance over multi-step trajectories, including the
nesterov / dampening / weight-decay corners — so the speedup can never
silently change results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.dtype import default_dtype
from repro.nn.modules.base import Parameter
from repro.optim import SGD, AdaGrad, Adam, AdamW, RMSprop


# ---------------------------------------------------------------------------
# reference implementations (the pre-fusion update rules, verbatim)
# ---------------------------------------------------------------------------

class RefSGD:
    def __init__(self, lr, momentum=0.0, weight_decay=0.0, nesterov=False, dampening=0.0):
        self.lr, self.momentum, self.weight_decay = lr, momentum, weight_decay
        self.nesterov, self.dampening = nesterov, dampening
        self.buf = None

    def step(self, param, grad):
        grad = grad + self.weight_decay * param if self.weight_decay else grad
        if self.momentum:
            if self.buf is None:
                self.buf = grad.copy()
            else:
                self.buf = self.momentum * self.buf + (1.0 - self.dampening) * grad
            update = grad + self.momentum * self.buf if self.nesterov else self.buf
        else:
            update = grad
        return param - self.lr * update


class RefAdam:
    def __init__(self, lr, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0, decoupled=False):
        self.lr, self.betas, self.eps = lr, betas, eps
        self.weight_decay, self.decoupled = weight_decay, decoupled
        self.m = self.v = None
        self.t = 0

    def step(self, param, grad):
        beta1, beta2 = self.betas
        if self.decoupled and self.weight_decay:
            param = param - self.lr * self.weight_decay * param
        elif not self.decoupled and self.weight_decay:
            grad = grad + self.weight_decay * param
        if self.m is None:
            self.m, self.v = np.zeros_like(param), np.zeros_like(param)
        self.t += 1
        self.m = beta1 * self.m + (1.0 - beta1) * grad
        self.v = beta2 * self.v + (1.0 - beta2) * grad * grad
        m_hat = self.m / (1.0 - beta1**self.t)
        v_hat = self.v / (1.0 - beta2**self.t)
        return param - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RefRMSprop:
    def __init__(self, lr, alpha=0.99, eps=1e-8, momentum=0.0, weight_decay=0.0):
        self.lr, self.alpha, self.eps = lr, alpha, eps
        self.momentum, self.weight_decay = momentum, weight_decay
        self.sq = self.buf = None

    def step(self, param, grad):
        grad = grad + self.weight_decay * param if self.weight_decay else grad
        if self.sq is None:
            self.sq = np.zeros_like(param)
        self.sq = self.alpha * self.sq + (1.0 - self.alpha) * grad * grad
        step = grad / (np.sqrt(self.sq) + self.eps)
        if self.momentum:
            self.buf = step.copy() if self.buf is None else self.momentum * self.buf + step
            step = self.buf
        return param - self.lr * step


class RefAdaGrad:
    def __init__(self, lr, eps=1e-10, weight_decay=0.0):
        self.lr, self.eps, self.weight_decay = lr, eps, weight_decay
        self.acc = None

    def step(self, param, grad):
        grad = grad + self.weight_decay * param if self.weight_decay else grad
        if self.acc is None:
            self.acc = np.zeros_like(param)
        self.acc = self.acc + grad * grad
        return param - self.lr * grad / (np.sqrt(self.acc) + self.eps)


# ---------------------------------------------------------------------------
# the harness: run fused and reference side by side on a shared grad stream
# ---------------------------------------------------------------------------

def run_trajectory(make_fused, reference, steps=25, shape=(4, 3), dtype="float64", seed=0):
    """Feed identical seeded gradients to both and return (fused, reference)."""
    rng = np.random.default_rng(seed)
    start = rng.standard_normal(shape)
    grads = [rng.standard_normal(shape) for _ in range(steps)]
    with default_dtype(dtype):
        p = Parameter(start.copy())
        opt = make_fused([p])
        for g in grads:
            p.grad = g.astype(p.data.dtype)
            opt.step()
    ref_param = start.copy()
    for g in grads:
        ref_param = reference.step(ref_param, g)
    return p.data.astype(np.float64), ref_param


def assert_trajectories_match(fused, ref, dtype):
    # float64: only fp-association noise separates the two formulations.
    # float32: the fused path accumulates in float32 while the reference runs
    # in float64, so the bound is float32 rounding over the trajectory.
    tol = {"rtol": 1e-10, "atol": 1e-12} if dtype == "float64" else {"rtol": 2e-4, "atol": 2e-5}
    np.testing.assert_allclose(fused, ref, **tol)


DTYPES = ("float64", "float32")

SGD_CORNERS = [
    dict(lr=0.1),
    dict(lr=0.1, momentum=0.9),
    dict(lr=0.1, momentum=0.9, nesterov=True),
    dict(lr=0.1, momentum=0.9, dampening=0.3),
    dict(lr=0.1, momentum=0.9, weight_decay=0.05),
    dict(lr=0.1, momentum=0.9, nesterov=True, weight_decay=0.05),
    dict(lr=0.1, momentum=0.9, dampening=0.3, weight_decay=0.05),
    dict(lr=0.1, weight_decay=0.05),
]


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("kwargs", SGD_CORNERS, ids=lambda kw: "-".join(kw) or "vanilla")
def test_sgd_matches_reference(kwargs, dtype):
    fused, ref = run_trajectory(
        lambda ps: SGD(ps, **kwargs), RefSGD(**kwargs), dtype=dtype
    )
    assert_trajectories_match(fused, ref, dtype)


ADAM_CORNERS = [
    dict(lr=0.01),
    dict(lr=0.01, betas=(0.8, 0.95)),
    dict(lr=0.01, weight_decay=0.1),
]


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("kwargs", ADAM_CORNERS, ids=lambda kw: "-".join(kw) or "plain")
def test_adam_matches_reference(kwargs, dtype):
    fused, ref = run_trajectory(
        lambda ps: Adam(ps, **kwargs), RefAdam(**kwargs), dtype=dtype
    )
    assert_trajectories_match(fused, ref, dtype)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("weight_decay", [0.0, 0.1])
def test_adamw_matches_decoupled_reference(weight_decay, dtype):
    fused, ref = run_trajectory(
        lambda ps: AdamW(ps, lr=0.01, weight_decay=weight_decay),
        RefAdam(lr=0.01, weight_decay=weight_decay, decoupled=True),
        dtype=dtype,
    )
    assert_trajectories_match(fused, ref, dtype)


RMSPROP_CORNERS = [
    dict(lr=0.01),
    dict(lr=0.01, momentum=0.9),
    dict(lr=0.01, momentum=0.9, weight_decay=0.05),
    dict(lr=0.01, alpha=0.9, weight_decay=0.05),
]


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("kwargs", RMSPROP_CORNERS, ids=lambda kw: "-".join(kw) or "plain")
def test_rmsprop_matches_reference(kwargs, dtype):
    fused, ref = run_trajectory(
        lambda ps: RMSprop(ps, **kwargs), RefRMSprop(**kwargs), dtype=dtype
    )
    assert_trajectories_match(fused, ref, dtype)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("weight_decay", [0.0, 0.05])
def test_adagrad_matches_reference(weight_decay, dtype):
    fused, ref = run_trajectory(
        lambda ps: AdaGrad(ps, lr=0.5, weight_decay=weight_decay),
        RefAdaGrad(lr=0.5, weight_decay=weight_decay),
        dtype=dtype,
    )
    assert_trajectories_match(fused, ref, dtype)


# ---------------------------------------------------------------------------
# the in-place contract itself
# ---------------------------------------------------------------------------

def test_sgd_momentum_buffer_is_never_rebound():
    """The fix this file fences: state buffers must be mutated, not replaced."""
    p = Parameter(np.zeros(8))
    opt = SGD([p], lr=0.1, momentum=0.9)
    p.grad = np.ones(8)
    opt.step()
    buf_before = opt.state_for(p)["momentum_buffer"]
    for _ in range(3):
        p.grad = np.ones(8)
        opt.step()
    assert opt.state_for(p)["momentum_buffer"] is buf_before


def test_adam_moment_buffers_are_never_rebound():
    p = Parameter(np.zeros(8))
    opt = Adam([p], lr=0.1)
    p.grad = np.ones(8)
    opt.step()
    m, v = opt.state_for(p)["exp_avg"], opt.state_for(p)["exp_avg_sq"]
    for _ in range(3):
        p.grad = np.ones(8)
        opt.step()
    assert opt.state_for(p)["exp_avg"] is m
    assert opt.state_for(p)["exp_avg_sq"] is v


def test_step_leaves_gradient_untouched():
    """The autograd engine owns p.grad; weight decay must not mutate it."""
    p = Parameter(np.full(4, 2.0))
    opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.5)
    grad = np.ones(4)
    p.grad = grad
    opt.step()
    np.testing.assert_array_equal(grad, np.ones(4))


def test_scratch_buffers_stay_out_of_state_dict():
    p = Parameter(np.zeros(4))
    opt = Adam([p], lr=0.1, weight_decay=0.1)
    p.grad = np.ones(4)
    opt.step()
    entry = opt.state_dict()["state"][0]
    assert set(entry) == {"step", "exp_avg", "exp_avg_sq"}


def test_state_dict_cast_to_param_dtype_on_load():
    with default_dtype("float64"):
        p64 = Parameter(np.zeros(4))
    opt64 = SGD([p64], lr=0.1, momentum=0.9)
    p64.grad = np.ones(4)
    opt64.step()
    with default_dtype("float32"):
        p32 = Parameter(np.zeros(4))
    opt32 = SGD([p32], lr=0.1, momentum=0.9)
    opt32.load_state_dict(opt64.state_dict())
    assert opt32.state_for(p32)["momentum_buffer"].dtype == np.float32
