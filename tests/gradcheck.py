"""Numerical gradient-checking helpers shared across the test suite.

Lives in its own module (rather than ``conftest.py``) so test files can import
it by a unique name — ``from conftest import ...`` breaks as soon as another
directory's ``conftest.py`` shadows this one on ``sys.path``.

Two layers of helpers:

* :func:`numerical_gradient` / :func:`assert_grad_close` — the low-level
  central-difference checker used by the op-level tests;
* :func:`module_gradcheck` — a whole-module checker, parameterised over the
  training dtype.  The *numeric* reference is always computed on a float64
  twin of the module (central differences in float32 drown in rounding
  noise); the *analytic* gradients come from a module built and run under the
  requested dtype.  Because weight init draws in float64 and casts, both twins
  start from the same weights, so a float32 analytic gradient must match the
  float64 numeric one up to float32 rounding — which is exactly the
  loosened tolerance :func:`tolerances_for` returns.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.dtype import default_dtype, dtype_name, storage_dtype
from repro.nn.modules.base import Module
from repro.nn.tensor import Tensor

__all__ = [
    "numerical_gradient",
    "assert_grad_close",
    "tolerances_for",
    "module_gradcheck",
]


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn with respect to x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


#: per-dtype gradcheck tolerances, keyed by canonical dtype name.  Analytic
#: gradients are compared against a float64 numeric reference, so each row
#: absorbs that dtype's forward/backward rounding — amplified over the graph —
#: while staying far below the O(1) error of an actually wrong gradient.
#: The emulated dtypes *compute* in float32 but round every stored tensor to
#: their grid (bf16: 7 mantissa bits, ~2^-8 relative per store; fp16: 10 bits,
#: ~2^-11), so their rows are the float32 row widened by the grid's relative
#: step times a graph-depth amplification factor.
TOLERANCES = {
    "float64": {"atol": 1e-5, "rtol": 1e-4},
    "float32": {"atol": 5e-3, "rtol": 1e-2},
    "float16": {"atol": 2e-2, "rtol": 6e-2},
    "bfloat16": {"atol": 8e-2, "rtol": 3e-1},
}


def tolerances_for(dtype: str | np.dtype) -> dict[str, float]:
    """Gradcheck tolerances appropriate for a training dtype (see TOLERANCES)."""
    return dict(TOLERANCES[dtype_name(dtype)])


def _scalar_loss(module: Module, x_arr: np.ndarray, proj: np.ndarray, forward) -> float:
    out = forward(module, Tensor(x_arr)) if forward is not None else module(Tensor(x_arr))
    return float((out.data.astype(np.float64) * proj).sum())


def module_gradcheck(
    build_fn: Callable[[np.random.Generator], Module],
    input_shape: tuple[int, ...],
    dtype: str = "float64",
    seed: int = 0,
    eps: float = 1e-6,
    eval_mode: bool = False,
    warmup_steps: int = 0,
    forward: Callable[[Module, Tensor], Tensor] | None = None,
) -> None:
    """Gradcheck a module's input and parameter gradients under ``dtype``.

    ``build_fn(rng)`` must construct the module deterministically from the
    given generator; it is called twice — once under float64 (the numeric
    reference twin) and once under ``dtype`` (the analytic side).
    ``warmup_steps`` runs that many train-mode forwards first (to populate
    e.g. BatchNorm running statistics) before ``eval_mode`` switches both
    twins to eval.
    """
    tols = tolerances_for(dtype)
    rng = np.random.default_rng(seed)
    x_data = rng.standard_normal(input_shape)

    def prepared(active_dtype: str) -> Module:
        with default_dtype(active_dtype):
            module = build_fn(np.random.default_rng(seed))
            for _ in range(warmup_steps):
                forward(module, Tensor(x_data)) if forward is not None else module(Tensor(x_data))
            if eval_mode:
                module.eval()
        return module

    ref = prepared("float64")
    out_ref = forward(ref, Tensor(x_data)) if forward is not None else ref(Tensor(x_data))
    # A fixed random projection makes the scalar sensitive to every output
    # (a bare .sum() has an identically-zero gradient through softmax-like
    # outputs, which would vacuously pass).
    proj = np.random.default_rng(seed + 1).standard_normal(out_ref.shape)

    # analytic side: the twin of ``ref``, built/run under the requested dtype.
    # Emulated dtypes (bfloat16/float16) *store* float32 arrays, so dtype
    # assertions compare against the storage dtype.
    storage = storage_dtype(dtype)
    module = prepared(dtype)
    with default_dtype(dtype):
        x = Tensor(x_data, requires_grad=True)
        out = forward(module, x) if forward is not None else module(x)
        assert out.dtype == storage, f"forward produced {out.dtype}, expected {storage}"
        out.backward(proj.astype(out.data.dtype))

    # numeric vs analytic: input gradient
    numeric_x = numerical_gradient(lambda arr: _scalar_loss(ref, arr, proj, forward), x_data.copy(), eps=eps)
    assert x.grad is not None and x.grad.dtype == storage
    np.testing.assert_allclose(x.grad.astype(np.float64), numeric_x, **tols)

    # numeric vs analytic: every parameter gradient
    analytic_params = dict(module.named_parameters())
    for name, ref_param in ref.named_parameters():
        flat = ref_param.data.reshape(-1)
        numeric = np.zeros_like(flat)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = _scalar_loss(ref, x_data, proj, forward)
            flat[i] = original - eps
            minus = _scalar_loss(ref, x_data, proj, forward)
            flat[i] = original
            numeric[i] = (plus - minus) / (2 * eps)
        analytic = analytic_params[name].grad
        assert analytic is not None, f"no gradient accumulated for parameter {name!r}"
        assert analytic.dtype == storage, f"parameter {name!r} grad dtype {analytic.dtype}"
        np.testing.assert_allclose(
            analytic.astype(np.float64).reshape(-1),
            numeric,
            err_msg=f"parameter {name!r}",
            **tols,
        )
