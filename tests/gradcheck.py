"""Numerical gradient-checking helpers shared across the test suite.

Lives in its own module (rather than ``conftest.py``) so test files can import
it by a unique name — ``from conftest import ...`` breaks as soon as another
directory's ``conftest.py`` shadows this one on ``sys.path``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["numerical_gradient", "assert_grad_close"]


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn with respect to x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
