"""Tests for the BERT-GLUE proxy fine-tuning runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import glue_task_specs
from repro.experiments.glue_runner import (
    GlueRunConfig,
    GlueResult,
    glue_result_to_records,
    run_glue_benchmark,
    run_glue_task,
)


@pytest.fixture(scope="module")
def tiny_config():
    return GlueRunConfig(schedule="rex", size_scale=0.15, pretrain_steps=2, max_epochs=3)


class TestGlueTaskRun:
    def test_scores_per_epoch(self, tiny_config):
        task = glue_task_specs(size_scale=0.15)[0]  # CoLA
        scores = run_glue_task(task, tiny_config)
        assert len(scores) == 3
        assert all(np.isfinite(s) for s in scores)

    def test_regression_task_runs(self, tiny_config):
        stsb = [t for t in glue_task_specs(size_scale=0.15) if t.name == "STS-B"][0]
        scores = run_glue_task(stsb, tiny_config)
        assert len(scores) == 3
        assert all(-100.0 <= s <= 100.0 for s in scores)


class TestGlueBenchmark:
    def test_benchmark_covers_all_tasks(self, tiny_config):
        result = run_glue_benchmark(tiny_config)
        assert set(result.per_task_scores) == {
            "CoLA",
            "MNLI",
            "MRPC",
            "QNLI",
            "QQP",
            "RTE",
            "SST-2",
            "STS-B",
        }
        means = result.mean_scores()
        assert len(means) == 3
        assert result.score_after(1) == means[0]

    def test_result_to_records(self):
        result = GlueResult(
            schedule="rex",
            optimizer="adamw",
            per_task_scores={"CoLA": [10.0, 20.0, 30.0], "RTE": [50.0, 60.0, 70.0]},
        )
        store = glue_result_to_records(result)
        assert len(store) == 3
        budgets = sorted(store.unique("budget_fraction"))
        assert budgets == pytest.approx([1 / 3, 2 / 3, 1.0])
        final = store.filter(budget_fraction=1.0)[0]
        assert final.metric == pytest.approx(50.0)  # mean of 30 and 70
        assert final.higher_is_better
        assert final.extra["per_task"]["CoLA"] == 30.0
