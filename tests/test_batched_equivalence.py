"""Differential suite: seed-stacked batched training ≡ the serial per-seed loop.

Three layers of equivalence, from op-level trajectories to rendered artifacts:

* **Step-loop trajectories** — for every model in the registry and both
  dtypes, S stacked replicas trained together must reproduce each replica's
  stand-alone losses and final parameters within ``tolerances_for`` (they are
  bitwise equal on a given BLAS, but the tolerance keeps the suite portable).
* **Record equality** — ``run_batched_cell`` must produce ``RunRecord``\\ s
  exactly equal to ``run_single``'s, per setting and dtype.
* **Report bytes** — an artifact executed with ``batch_seeds=True`` must
  render markdown and JSON byte-identical to the serial run, and its cache
  entries must be byte-identical files.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from gradcheck import tolerances_for
from repro import nn
from repro.experiments.batched import BatchedRunCell, run_batched_cell
from repro.experiments.runner import RunConfig, run_single
from repro.models.registry import MODEL_REGISTRY, build_model
from repro.nn.losses import cross_entropy, detection_loss, vae_loss

DTYPES = ("float64", "float32", "bfloat16")
NUM_SEEDS = 3
STEPS = 3


# ---------------------------------------------------------------------------
# model-level step-loop equivalence (covers every registry model)
# ---------------------------------------------------------------------------

def _classification_batch(rng: np.random.Generator, num_classes: int = 4):
    images = rng.standard_normal((4, 3, 8, 8))
    labels = rng.integers(0, num_classes, size=4)
    return (images, labels), lambda model, x, y: cross_entropy(model(x), y)


def _model_case(name: str):
    """(build_fn, batch_fn) for one registry model's differential check.

    ``build_fn(seed)`` constructs the replica; ``batch_fn(rng)`` returns one
    per-seed ``(inputs, loss_fn)`` pair where ``inputs`` can be stacked along
    a leading seed axis.
    """
    if name == "mlp":
        return (
            lambda seed: build_model("mlp", in_features=12, num_classes=4, hidden_sizes=(8,), seed=seed),
            lambda rng: (
                (rng.standard_normal((4, 12)), rng.integers(0, 4, size=4)),
                lambda model, x, y: cross_entropy(model(x), y),
            ),
        )
    if name in ("resnet20", "resnet38", "resnet50", "wideresnet", "vgg16"):
        return (
            lambda seed: build_model(name, num_classes=4, seed=seed),
            _classification_batch,
        )
    if name == "vae":
        return (
            lambda seed: build_model("vae", seed=seed),
            lambda rng: (
                (rng.random((4, 1, 8, 8)),),
                lambda model, x: (lambda out: vae_loss(out[0], x.data, out[1], out[2]))(model(x)),
            ),
        )
    if name == "detector":
        def detector_batch(rng: np.random.Generator):
            images = rng.standard_normal((2, 3, 16, 16))
            targets = np.zeros((2, 4, 4, 8))
            for i in range(2):
                gx, gy = rng.integers(0, 4, size=2)
                targets[i, gx, gy, 0:4] = rng.random(4)
                targets[i, gx, gy, 4] = 1.0
                targets[i, gx, gy, 5 + rng.integers(0, 3)] = 1.0
            return (images, targets), (
                lambda model, x, t: detection_loss(model(x), t, num_classes=3)
            )
        return (lambda seed: build_model("detector", seed=seed), detector_batch)
    if name == "transformer":
        return (
            lambda seed: build_model("transformer", num_labels=2, seed=seed, dropout=0.1),
            lambda rng: (
                (rng.integers(2, 64, size=(4, 6)), rng.integers(0, 2, size=4)),
                lambda model, tokens, y: cross_entropy(model(tokens.data.astype(np.int64), None), y),
            ),
        )
    raise KeyError(name)


def _as_inputs(arrays: tuple[np.ndarray, ...], stacked: bool):
    """Wrap per-batch arrays the way each loss_fn expects them.

    The first array is the model input (a Tensor, seed-tagged when stacked);
    the remaining arrays (labels/targets) pass through as numpy.
    """
    first = nn.seed_stacked(arrays[0]) if stacked else nn.Tensor(arrays[0])
    return (first, *arrays[1:])


def _train_serial(name: str, dtype: str):
    build_fn, batch_fn = _model_case(name)
    losses = np.zeros((NUM_SEEDS, STEPS))
    states = []
    with nn.default_dtype(dtype):
        batches = [batch_fn(np.random.default_rng(100 + s))[0] for s in range(NUM_SEEDS)]
        loss_fn = batch_fn(np.random.default_rng(0))[1]
        for s in range(NUM_SEEDS):
            model = build_fn(s)
            from repro.optim import SGD

            optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
            for step in range(STEPS):
                inputs = _as_inputs(batches[s], stacked=False)
                loss = loss_fn(model, *inputs)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses[s, step] = float(loss.data)
            states.append(model.state_dict())
    return losses, states


def _train_batched(name: str, dtype: str):
    build_fn, batch_fn = _model_case(name)
    losses = np.zeros((NUM_SEEDS, STEPS))
    with nn.default_dtype(dtype):
        batches = [batch_fn(np.random.default_rng(100 + s))[0] for s in range(NUM_SEEDS)]
        loss_fn = batch_fn(np.random.default_rng(0))[1]
        stacked_arrays = tuple(
            np.stack([batches[s][field] for s in range(NUM_SEEDS)])
            for field in range(len(batches[0]))
        )
        model = nn.stack_modules([build_fn(s) for s in range(NUM_SEEDS)])
        from repro.optim import SGD

        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        ones = None
        for step in range(STEPS):
            inputs = _as_inputs(stacked_arrays, stacked=True)
            loss = loss_fn(model, *inputs)
            optimizer.zero_grad()
            if ones is None:
                ones = np.ones(NUM_SEEDS, dtype=loss.data.dtype)
            loss.backward(ones)
            optimizer.step()
            losses[:, step] = loss.data.astype(np.float64)
        states = [nn.seed_slice_state(model, s) for s in range(NUM_SEEDS)]
    return losses, states


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_step_loop_matches_serial(name, dtype):
    """Batched S-seed trajectories match the serial loop: losses and params."""
    tols = tolerances_for(dtype)
    serial_losses, serial_states = _train_serial(name, dtype)
    batched_losses, batched_states = _train_batched(name, dtype)
    np.testing.assert_allclose(batched_losses, serial_losses, **tols)
    for s in range(NUM_SEEDS):
        assert serial_states[s].keys() == batched_states[s].keys()
        for key in serial_states[s]:
            np.testing.assert_allclose(
                batched_states[s][key], serial_states[s][key], err_msg=f"seed {s} {key}", **tols
            )


def test_seed_order_does_not_leak():
    """Seed s's batched trajectory is independent of which siblings it stacks with."""
    name, dtype = "mlp", "float64"
    _, states_abc = _train_batched(name, dtype)
    # train the same seeds in a different stacking arrangement: rebuild with
    # seed 1 alone and compare against its slice from the 3-stack
    build_fn, batch_fn = _model_case(name)
    with nn.default_dtype(dtype):
        batches = [batch_fn(np.random.default_rng(100 + s))[0] for s in range(NUM_SEEDS)]
        loss_fn = batch_fn(np.random.default_rng(0))[1]
        model = nn.stack_modules([build_fn(1), build_fn(2)])
        from repro.optim import SGD

        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        stacked_arrays = tuple(
            np.stack([batches[s][field] for s in (1, 2)]) for field in range(len(batches[0]))
        )
        for _ in range(STEPS):
            inputs = _as_inputs(stacked_arrays, stacked=True)
            loss = loss_fn(model, *inputs)
            optimizer.zero_grad()
            loss.backward(np.ones(2))
            optimizer.step()
        state_pair = nn.seed_slice_state(model, 0)
    for key, value in states_abc[1].items():
        np.testing.assert_array_equal(value, state_pair[key], err_msg=key)


# ---------------------------------------------------------------------------
# record-level equality through the real runner
# ---------------------------------------------------------------------------

RECORD_CASES = [
    ("RN20-CIFAR10", "sgdm", "rex", "float64"),
    ("RN20-CIFAR10", "adam", "cosine", "float32"),
    ("VGG16-CIFAR100", "sgdm", "step", "float64"),
    ("VAE-MNIST", "adam", "linear", "float32"),
    ("YOLO-VOC", "adam", "rex", "float64"),  # exercises the warmup wrapper
]


@pytest.mark.parametrize("setting,optimizer,schedule,dtype", RECORD_CASES)
def test_batched_records_equal_serial(setting, optimizer, schedule, dtype):
    base = RunConfig(
        setting=setting,
        schedule=schedule,
        optimizer=optimizer,
        budget_fraction=0.05,
        size_scale=0.12,
        epoch_scale=0.1,
        dtype=dtype,
    )
    seeds = (0, 7)
    serial = [run_single(dataclasses.replace(base, seed=seed)) for seed in seeds]
    batched = run_batched_cell(BatchedRunCell(base=base, seeds=seeds))
    assert [record.to_dict() for record in batched] == [record.to_dict() for record in serial]


#: a cell that reliably diverges: the norm-free VAE with an absurd learning
#: rate over enough steps for the blow-up to land (the Figure 4 LR-sensitivity
#: sweep hits exactly this regime)
DIVERGING_CELL = dict(
    setting="VAE-MNIST",
    schedule="cosine",
    optimizer="sgdm",
    budget_fraction=1.0,
    learning_rate=1e6,
    size_scale=0.12,
    epoch_scale=0.5,
)


def _record_blobs(records):
    # NaN metrics make dict equality vacuously False (nan != nan); the
    # serialised form compares them structurally, like the cache files do
    import json

    return [json.dumps(record.to_dict(), sort_keys=True) for record in records]


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_diverging_cell_falls_back_to_serial_protocol():
    """A diverging seed aborts the stacked pass; the serial fallback reproduces
    run_single's stop-early/sentinel-metric protocol record for record."""
    base = RunConfig(**DIVERGING_CELL)
    seeds = (0, 1)
    serial = [run_single(dataclasses.replace(base, seed=seed)) for seed in seeds]
    assert any(record.extra["diverged"] for record in serial)
    batched = run_batched_cell(BatchedRunCell(base=base, seeds=seeds))
    assert _record_blobs(batched) == _record_blobs(serial)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_batched_trainer_raises_seed_divergence():
    """The stacked trainer itself refuses to record a poisoned trajectory."""
    from repro.experiments.batched import _run_stacked
    from repro.training.batched import SeedDivergence

    with pytest.raises(SeedDivergence):
        _run_stacked(BatchedRunCell(base=RunConfig(**DIVERGING_CELL), seeds=(0, 1)))


def test_single_seed_cell_delegates_to_run_single():
    base = RunConfig(
        setting="VAE-MNIST",
        schedule="cosine",
        optimizer="adam",
        budget_fraction=0.05,
        size_scale=0.12,
        epoch_scale=0.1,
    )
    (record,) = run_batched_cell(BatchedRunCell(base=base, seeds=(3,)))
    assert record.to_dict() == run_single(dataclasses.replace(base, seed=3)).to_dict()


# ---------------------------------------------------------------------------
# artifact reports: byte identity through the engine and renderers
# ---------------------------------------------------------------------------

def test_batched_artifact_reports_are_byte_identical():
    from repro.execution import ExecutionContext, InMemoryRunCache
    from repro.reporting.registry import execute_artifact, get_artifact, resolve_scale
    from repro.reporting.report import render_json, render_markdown

    artifact = get_artifact("table7")
    scale = resolve_scale("micro", seeds=(0, 1))

    cache_serial = InMemoryRunCache()
    store_serial, report_serial = execute_artifact(
        artifact, scale, context=ExecutionContext(cache=cache_serial)
    )
    cache_batched = InMemoryRunCache()
    store_batched, report_batched = execute_artifact(
        artifact, scale, context=ExecutionContext(cache=cache_batched, batch_seeds=True)
    )

    assert report_batched.batched_cells > 0
    assert report_batched.executed == report_serial.executed

    result_serial = artifact.build(store_serial, scale)
    result_batched = artifact.build(store_batched, scale)
    assert render_markdown(result_batched, scale) == render_markdown(result_serial, scale)
    assert render_json(result_batched, scale) == render_json(result_serial, scale)

    # the caches are content-addressed by the *per-seed* configs: same keys,
    # and (via each record's serialised form) the same stored payloads
    assert cache_serial._entries == cache_batched._entries
