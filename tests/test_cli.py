"""Snapshot and end-to-end tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_NAMES = [f"table{i}" for i in range(1, 12)] + [f"fig{i}" for i in range(1, 5)]


class TestHelp:
    def test_top_level_help_lists_subcommands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for token in ("list", "run", "report", "clean", "python -m repro"):
            assert token in out

    @pytest.mark.parametrize("command", ["list", "run", "report", "clean"])
    def test_subcommand_help(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "--" in capsys.readouterr().out

    def test_missing_subcommand_fails(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestList:
    def test_list_enumerates_all_tables_and_figures(self, capsys):
        assert main(["list", "--scale", "micro"]) == 0
        out = capsys.readouterr().out
        for name in ALL_NAMES:
            assert name in out
        for ref in ("Table 1", "Table 11", "Figure 1", "Figure 4"):
            assert ref in out
        assert "15 artifacts" in out

    def test_list_only_selection(self, capsys):
        assert main(["list", "--only", "table3,fig2", "--scale", "micro"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig2" in out
        assert "table4" not in out

    def test_unknown_artifact_is_a_clean_error(self, capsys):
        assert main(["list", "--only", "table99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_module_entry_point(self):
        """``python -m repro list`` works as documented (real subprocess)."""
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list", "--scale", "micro"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "table4" in proc.stdout and "fig4" in proc.stdout


class TestRunReportClean:
    def test_table3_end_to_end(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out = str(tmp_path / "reports")
        assert main(["run", "--only", "table3", "--cache-dir", cache]) == 0
        assert main(["report", "--only", "table3", "--cache-dir", cache, "--out", out]) == 0
        report = (tmp_path / "reports" / "table3.md").read_text()
        assert "# Table 3" in report
        assert "## Drift against the paper's published numbers" in report
        assert "Chen, Wang and Kedziora" in report
        payload = json.loads((tmp_path / "reports" / "table3.json").read_text())
        assert payload["name"] == "table3"
        assert all(row["drift"] == 0.0 for row in payload["drift"])

    def test_dtype_and_seeds_flags_parse(self, capsys):
        assert main(["list", "--scale", "micro", "--dtype", "float32", "--seeds", "0,1"]) == 0
        with pytest.raises(SystemExit):
            main(["list", "--seeds", "zero"])

    def test_batch_seeds_end_to_end(self, tmp_path, capsys):
        """--batch-seeds trains seed-stacked cells and stays fully resumable."""
        cache = str(tmp_path / "cache")
        args = ["--only", "table7", "--scale", "micro", "--seeds", "0,1", "--cache-dir", cache]
        assert main(["run", *args, "--batch-seeds"]) == 0
        out = capsys.readouterr().out
        assert "seed-batched cells" in out
        # a serial re-run over the batched cache is a pure cache hit: the
        # batched cell was split into per-seed records before caching
        assert main(["run", *args, "--no-batch-seeds"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

    def test_clean_refuses_empty_cache_dir(self, tmp_path, capsys, monkeypatch):
        """'' disables caching on run/report; clean must not fall back to cwd."""
        monkeypatch.chdir(tmp_path)
        precious = tmp_path / "precious.json"
        precious.write_text("{}")
        assert main(["clean", "--cache-dir", ""]) == 2
        assert "non-empty --cache-dir" in capsys.readouterr().err
        assert precious.exists()

    def test_clean_reports_only_touches_artifact_reports(self, tmp_path, capsys):
        """--reports must not glob away unrelated markdown/JSON in --out."""
        out = tmp_path / "reports"
        out.mkdir()
        (out / "table3.md").write_text("report")
        (out / "table3.json").write_text("{}")
        (out / "NOTES.md").write_text("mine")
        assert main(["clean", "--cache-dir", str(tmp_path / "cache"), "--out", str(out), "--reports"]) == 0
        assert "removed 2 report files" in capsys.readouterr().out
        assert (out / "NOTES.md").exists()
        assert not (out / "table3.md").exists()

    def test_workers_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--only", "table3", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err


@pytest.fixture
def micro_artifact(make_micro_artifact):
    return make_micro_artifact("microcli")


class TestResumability:
    def test_second_run_is_pure_cache_and_clean_resets(self, micro_artifact, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["--only", "microcli", "--scale", "micro", "--cache-dir", cache]

        assert main(["run", *args]) == 0
        first = capsys.readouterr().out
        assert "1 executed" in first and "0 cache hits" in first

        assert main(["run", *args]) == 0
        second = capsys.readouterr().out
        assert "1 cache hits" in second and "0 executed" in second

        out = str(tmp_path / "reports")
        assert main(["report", *args, "--out", out]) == 0
        assert "all cells cached" in capsys.readouterr().out
        assert (tmp_path / "reports" / "microcli.md").exists()

        assert main(["clean", "--cache-dir", cache, "--out", out, "--reports"]) == 0
        cleaned = capsys.readouterr().out
        assert "removed 1 cached records" in cleaned
        assert "removed 2 report files" in cleaned
        assert list((tmp_path / "cache").glob("*.json")) == []


class TestChaosCommand:
    def test_chaos_help_and_registry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in ("corrupt-cache", "flaky-remote", "worker-crash"):
            assert name in out

    def test_chaos_rejects_bad_rate(self, micro_artifact, capsys):
        assert main(["chaos", "corrupt-cache", "--artifact", "microcli", "--rate", "1.5"]) == 2
        assert "--rate" in capsys.readouterr().err

    def test_chaos_end_to_end_passes_on_micro_artifact(self, micro_artifact, tmp_path, capsys):
        code = main(
            [
                "chaos",
                "corrupt-cache",
                "--artifact",
                "microcli",
                "--scale",
                "micro",
                "--rate",
                "1.0",
                "--workdir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "chaos PASS" in out and "reports identical: True" in out
        # the workdir keeps both trees for diffing
        assert (tmp_path / "baseline" / "reports" / "microcli.md").exists()
        assert (tmp_path / "chaos" / "reports" / "microcli.md").exists()


class TestQueueCommands:
    @pytest.fixture
    def dead_queue(self, tmp_path):
        """A queue file holding one dead-lettered job with a two-error chain."""
        from repro.execution import WorkQueue
        from tests.test_fabric import tiny_config

        path = tmp_path / "q.sqlite"
        queue = WorkQueue(path)
        job_id = queue.submit(tiny_config(), max_attempts=2)
        queue.lease("w1")
        queue.fail(job_id, "w1", "boom 1")
        queue.lease("w1")
        queue.fail(job_id, "w1", "boom 2")
        return path

    def test_queue_stats(self, dead_queue, capsys):
        assert main(["queue", "stats", "--queue", str(dead_queue)]) == 0
        out = capsys.readouterr().out
        assert "dead" in out and "pending" in out

    def test_queue_dead_letters_show_error_chain(self, dead_queue, capsys):
        assert main(["queue", "dead-letters", "--queue", str(dead_queue)]) == 0
        assert "boom 1; boom 2" in capsys.readouterr().out

    def test_queue_requeue_dead_exactly_once(self, dead_queue, capsys):
        assert main(["queue", "requeue-dead", "--queue", str(dead_queue)]) == 0
        assert "requeued 1 dead job" in capsys.readouterr().out
        assert main(["queue", "requeue-dead", "--queue", str(dead_queue)]) == 0
        assert "requeued 0 dead jobs" in capsys.readouterr().out

    def test_queue_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["queue", "stats", "--queue", str(tmp_path / "nope.sqlite")]) == 2
        assert "no work queue" in capsys.readouterr().err
