"""Golden regression snapshots of exact schedule values.

The property suite (``test_schedule_properties.py``) asserts *bounds* —
monotonicity, terminal values, budget rescaling.  This file pins the actual
closed-form numbers: every (schedule, budget) pair's full learning-rate curve
is checked in ``golden/schedules.json`` against values captured from the
paper-faithful implementations, so any future refactor of ``schedules/``
diffs against the closed forms instead of only property envelopes.

Regenerate (after an *intentional* change) with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_schedules.py -q

and review the diff of ``tests/golden/schedules.json`` like any other code.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.schedules import build_schedule

GOLDEN_PATH = Path(__file__).parent / "golden" / "schedules.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") == "1"

#: the schedules snapshot-pinned to their closed forms
SCHEDULES = ("rex", "linear", "cosine", "step", "onecycle", "polynomial")
#: canonical budgets: the proxy-scale step counts of the paper's 1%-100% grid
BUDGETS = (2, 10, 50, 200)
#: canonical sampling rate (steps per epoch) for the epoch-sampled schedules
STEPS_PER_EPOCH = 10
BASE_LR = 0.1


def _curve(name: str, total_steps: int) -> list[float]:
    schedule = build_schedule(
        name,
        None,
        total_steps=total_steps,
        base_lr=BASE_LR,
        steps_per_epoch=STEPS_PER_EPOCH,
    )
    return [float(v) for v in schedule.sequence()]


def _current() -> dict[str, dict[str, list[float]]]:
    return {
        name: {str(budget): _curve(name, budget) for budget in BUDGETS}
        for name in SCHEDULES
    }


def _golden() -> dict[str, dict[str, list[float]]]:
    if REGEN:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(_current(), indent=1, sort_keys=True) + "\n")
    if not GOLDEN_PATH.exists():
        # never regenerate implicitly: comparing a fresh snapshot against the
        # implementation that just produced it would vacuously pass
        pytest.fail(
            f"golden snapshot {GOLDEN_PATH} is missing; restore it from git or "
            "regenerate deliberately with REPRO_REGEN_GOLDEN=1 and review the diff"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("name", SCHEDULES)
def test_schedule_matches_golden_curve(name, budget):
    golden = _golden()[name][str(budget)]
    current = _curve(name, budget)
    assert len(current) == len(golden) == budget
    # rtol absorbs at most libm ulp differences across platforms; any real
    # formula change is orders of magnitude larger
    np.testing.assert_allclose(current, golden, rtol=1e-12, atol=0.0)


def test_golden_file_covers_every_case():
    golden = _golden()
    assert sorted(golden) == sorted(SCHEDULES)
    for name in SCHEDULES:
        assert sorted(golden[name]) == sorted(str(b) for b in BUDGETS)


def test_curves_start_at_base_lr_scale():
    """Sanity anchor on the snapshot itself: no curve exceeds OneCycle's peak."""
    golden = _golden()
    for name, by_budget in golden.items():
        for values in by_budget.values():
            assert max(values) <= BASE_LR * 10 + 1e-12, name
            assert min(values) >= 0.0, name
