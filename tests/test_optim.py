"""Optimizer tests: update rules checked against hand-computed references."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.modules.base import Parameter
from repro.optim import SGD, Adam, AdamW, RMSprop, AdaGrad, build_optimizer


def make_param(value):
    return Parameter(np.array(value, dtype=float))


def set_grad(param, grad):
    param.grad = np.array(grad, dtype=float)


class TestSGD:
    def test_vanilla_update(self):
        p = make_param([1.0, 2.0])
        opt = SGD([p], lr=0.1)
        set_grad(p, [1.0, -1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.9, 2.1])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        set_grad(p, [1.0])
        opt.step()  # v=1, p=-1
        np.testing.assert_allclose(p.data, [-1.0])
        set_grad(p, [1.0])
        opt.step()  # v=0.9+1=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_nesterov_differs_from_classic(self):
        p1, p2 = make_param([0.0]), make_param([0.0])
        classic = SGD([p1], lr=1.0, momentum=0.9)
        nesterov = SGD([p2], lr=1.0, momentum=0.9, nesterov=True)
        for _ in range(2):
            set_grad(p1, [1.0])
            set_grad(p2, [1.0])
            classic.step()
            nesterov.step()
        assert p1.data[0] != p2.data[0]

    def test_weight_decay(self):
        p = make_param([2.0])
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        set_grad(p, [0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_skips_params_without_grad(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1)
        opt.step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_invalid_hyperparameters(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, nesterov=True)  # nesterov requires momentum


class TestAdam:
    def test_first_step_matches_reference(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        set_grad(p, [2.0])
        opt.step()
        # After bias correction the first step is lr * g / (|g| + eps) ~= lr.
        np.testing.assert_allclose(p.data, [1.0 - 0.1], atol=1e-6)

    def test_adaptive_scaling_is_per_parameter(self):
        p = make_param([0.0, 0.0])
        opt = Adam([p], lr=0.1)
        for _ in range(10):
            set_grad(p, [100.0, 0.01])
            opt.step()
        # Adam normalises per-coordinate: both coordinates move by ~lr per step.
        assert abs(p.data[0] - p.data[1]) < 0.05

    def test_adam_l2_weight_decay_affects_update(self):
        p1, p2 = make_param([1.0]), make_param([1.0])
        opt1 = Adam([p1], lr=0.1, weight_decay=0.0)
        opt2 = Adam([p2], lr=0.1, weight_decay=1.0)
        set_grad(p1, [0.0])
        set_grad(p2, [0.0])
        opt1.step()
        opt2.step()
        assert p1.data[0] == pytest.approx(1.0)
        assert p2.data[0] < 1.0

    def test_invalid_hyperparameters(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, eps=0.0)


class TestAdamW:
    def test_decoupled_decay_shrinks_weights_even_with_zero_grad(self):
        p = make_param([1.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.1)
        set_grad(p, [0.0])
        opt.step()
        # decoupled decay: p -= lr * wd * p, and the Adam update itself is 0
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.1 * 1.0])

    def test_adamw_differs_from_adam_with_same_settings(self):
        p1, p2 = make_param([1.0]), make_param([1.0])
        adam = Adam([p1], lr=0.1, weight_decay=0.1)
        adamw = AdamW([p2], lr=0.1, weight_decay=0.1)
        for _ in range(3):
            set_grad(p1, [1.0])
            set_grad(p2, [1.0])
            adam.step()
            adamw.step()
        assert p1.data[0] != p2.data[0]


class TestOtherOptimizers:
    def test_rmsprop_reduces_step_for_large_gradients(self):
        p = make_param([0.0])
        opt = RMSprop([p], lr=0.01)
        set_grad(p, [1000.0])
        opt.step()
        assert abs(p.data[0]) < 1.0  # normalised step

    def test_adagrad_accumulates_and_shrinks_steps(self):
        p = make_param([0.0])
        opt = AdaGrad([p], lr=1.0)
        deltas = []
        prev = 0.0
        for _ in range(3):
            set_grad(p, [1.0])
            opt.step()
            deltas.append(abs(p.data[0] - prev))
            prev = p.data[0]
        assert deltas[0] > deltas[1] > deltas[2]


class TestOptimizerInfrastructure:
    def test_param_groups_and_set_lr(self):
        p1, p2 = make_param([1.0]), make_param([2.0])
        opt = SGD([{"params": [p1], "lr": 0.1}, {"params": [p2], "lr": 0.2}], lr=0.05)
        assert opt.get_lr() == 0.1
        opt.set_lr(0.3)
        assert all(g["lr"] == 0.3 for g in opt.param_groups)
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)

    def test_duplicate_parameter_rejected(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            SGD([{"params": [p]}, {"params": [p]}], lr=0.1)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_parameter_rejected(self):
        with pytest.raises(TypeError):
            SGD([np.zeros(3)], lr=0.1)  # type: ignore[list-item]

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 2)
        opt = SGD(model.parameters(), lr=0.1)
        model(nn.Tensor(np.ones((1, 3)))).sum().backward()
        assert model.weight.grad is not None
        opt.zero_grad()
        assert model.weight.grad is None

    def test_state_dict_roundtrip(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.5, momentum=0.9)
        set_grad(p, [1.0])
        opt.step()
        state = opt.state_dict()

        p2 = make_param([1.0])
        opt2 = SGD([p2], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        assert opt2.get_lr() == 0.5
        np.testing.assert_allclose(
            opt2.state[id(p2)]["momentum_buffer"], opt.state[id(p)]["momentum_buffer"]
        )

    def test_build_optimizer_names(self):
        p = make_param([1.0])
        assert isinstance(build_optimizer("sgdm", [p], lr=0.1), SGD)
        assert build_optimizer("sgdm", [make_param([1.0])], lr=0.1).param_groups[0]["momentum"] == 0.9
        assert isinstance(build_optimizer("adam", [make_param([1.0])], lr=0.1), Adam)
        assert isinstance(build_optimizer("adamw", [make_param([1.0])], lr=0.1), AdamW)
        assert isinstance(build_optimizer("rmsprop", [make_param([1.0])], lr=0.1), RMSprop)
        assert isinstance(build_optimizer("adagrad", [make_param([1.0])], lr=0.1), AdaGrad)
        with pytest.raises(ValueError):
            build_optimizer("lbfgs", [make_param([1.0])], lr=0.1)


class TestConvergence:
    @pytest.mark.parametrize("optimizer_name", ["sgd", "sgdm", "adam", "adamw", "rmsprop", "adagrad"])
    def test_optimizers_minimise_a_quadratic(self, optimizer_name):
        """Every optimizer should drive ||x - target||^2 close to zero."""
        target = np.array([3.0, -2.0, 0.5])
        p = make_param([0.0, 0.0, 0.0])
        # AdaGrad's accumulated denominator shrinks its steps, so it needs a
        # larger learning rate to converge within the same iteration count.
        lr = {"sgd": 0.4, "sgdm": 0.2, "adagrad": 2.0}.get(optimizer_name, 0.1)
        opt = build_optimizer(optimizer_name, [p], lr=lr)
        for _ in range(400):
            set_grad(p, 2 * (p.data - target))
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=0.05)
