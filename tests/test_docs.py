"""Documentation lint: dangling path references and docstring coverage.

Mirrors the CI docs-lint job so regressions surface locally: every repo path
mentioned in the markdown docs must exist, and the packages opted into the
pydocstyle rules (execution/, schedules/, reporting/, cli/) must document
every public module, class and function.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: packages held to the public-docstring contract (mirrors pyproject's ruff D1
#: per-file-ignore opt-outs: everything NOT listed there must be documented)
DOCUMENTED_PACKAGES = (
    "src/repro/execution",
    "src/repro/faults",
    "src/repro/schedules",
    "src/repro/reporting",
    "src/repro/cli",
)


def _load_check_doc_refs():
    spec = importlib.util.spec_from_file_location(
        "check_doc_refs", REPO_ROOT / "tools" / "check_doc_refs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_markdown_docs_reference_existing_paths():
    checker = _load_check_doc_refs()
    assert checker.missing_references(REPO_ROOT) == []


def _missing_docstrings(path: Path) -> list[str]:
    tree = ast.parse(path.read_text())
    missing: list[str] = []
    if not ast.get_docstring(tree):
        missing.append(f"{path.relative_to(REPO_ROOT)}:1 (module)")

    def walk(node: ast.AST, prefix: str = "") -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                dunder = name.startswith("__") and name.endswith("__")
                if not name.startswith("_") and not dunder and not ast.get_docstring(child):
                    missing.append(f"{path.relative_to(REPO_ROOT)}:{child.lineno} {prefix}{name}")
                if isinstance(child, ast.ClassDef):
                    walk(child, prefix=f"{name}.")

    walk(tree)
    return missing


def test_public_api_docstring_coverage():
    """Every exported class/function in the opted-in packages has a docstring."""
    problems: list[str] = []
    for package in DOCUMENTED_PACKAGES:
        for path in sorted((REPO_ROOT / package).glob("*.py")):
            problems.extend(_missing_docstrings(path))
    problems.extend(_missing_docstrings(REPO_ROOT / "src" / "repro" / "__main__.py"))
    assert problems == [], "undocumented public API:\n" + "\n".join(problems)
