"""Tests for the concrete learning-rate schedules and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.modules.base import Parameter
from repro.optim import SGD, Adam
from repro.schedules import (
    ConstantSchedule,
    CosineSchedule,
    CosineWarmRestartsSchedule,
    DecayOnPlateauSchedule,
    DelayedLinearSchedule,
    ExponentialSchedule,
    LinearSchedule,
    OneCycleSchedule,
    PAPER_SCHEDULES,
    PolynomialSchedule,
    ProfileSchedule,
    REXSchedule,
    StepSchedule,
    TriangularCyclicSchedule,
    WarmupWrapper,
    available_schedules,
    build_schedule,
    register_schedule,
)
from repro.schedules import functional as FS
from repro.schedules.profiles import LinearProfile
from repro.schedules.sampling import Milestones


def make_optimizer(lr=0.1, momentum=0.9):
    return SGD([Parameter(np.zeros(3))], lr=lr, momentum=momentum)


class TestScheduleMechanics:
    def test_step_applies_lr_to_optimizer(self):
        opt = make_optimizer(lr=0.1)
        sched = LinearSchedule(opt, total_steps=10)
        lr0 = sched.step()
        assert lr0 == pytest.approx(0.1)
        assert opt.get_lr() == pytest.approx(0.1)
        lr1 = sched.step()
        assert lr1 == pytest.approx(0.1 * (1 - 1 / 10))
        assert opt.get_lr() == pytest.approx(lr1)
        assert sched.get_last_lr() == pytest.approx(lr1)

    def test_stepping_past_budget_clamps_to_final_lr(self):
        sched = LinearSchedule(None, total_steps=5, base_lr=1.0)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(sched.lr_at(4))

    def test_requires_optimizer_or_base_lr(self):
        with pytest.raises(ValueError):
            LinearSchedule(None, total_steps=10)
        with pytest.raises(ValueError):
            LinearSchedule(None, total_steps=0, base_lr=0.1)

    def test_sequence_matches_lr_at(self):
        sched = REXSchedule(None, total_steps=25, base_lr=0.5)
        seq = sched.sequence()
        assert len(seq) == 25
        np.testing.assert_allclose(seq, [sched.lr_at(t) for t in range(25)])
        np.testing.assert_allclose(sched.normalized_sequence(), seq / 0.5)

    def test_state_dict_roundtrip(self):
        sched = CosineSchedule(None, total_steps=10, base_lr=0.3)
        sched.step()
        sched.step()
        state = sched.state_dict()
        other = CosineSchedule(None, total_steps=10, base_lr=0.3)
        other.load_state_dict(state)
        assert other.last_step == sched.last_step
        assert other.get_last_lr() == sched.get_last_lr()

    def test_constant_schedule(self):
        sched = ConstantSchedule(None, total_steps=7, base_lr=0.01)
        assert all(lr == 0.01 for lr in sched.sequence())
        with pytest.raises(ValueError):
            sched.lr_at(7)


class TestFormulaAgreement:
    """Class-based schedules must agree with the pure functional forms of Section 4.1."""

    TOTAL, LR = 40, 0.3

    def test_rex(self):
        sched = REXSchedule(None, total_steps=self.TOTAL, base_lr=self.LR)
        for t in range(self.TOTAL):
            assert sched.lr_at(t) == pytest.approx(FS.rex_lr(t, self.TOTAL, self.LR))

    def test_linear(self):
        sched = LinearSchedule(None, total_steps=self.TOTAL, base_lr=self.LR)
        for t in range(self.TOTAL):
            assert sched.lr_at(t) == pytest.approx(FS.linear_lr(t, self.TOTAL, self.LR))

    def test_cosine(self):
        sched = CosineSchedule(None, total_steps=self.TOTAL, base_lr=self.LR)
        for t in range(self.TOTAL):
            assert sched.lr_at(t) == pytest.approx(FS.cosine_lr(t, self.TOTAL, self.LR))

    def test_exponential(self):
        sched = ExponentialSchedule(None, total_steps=self.TOTAL, base_lr=self.LR, gamma=-3.0)
        for t in range(self.TOTAL):
            assert sched.lr_at(t) == pytest.approx(FS.exponential_lr(t, self.TOTAL, self.LR))

    def test_step(self):
        sched = StepSchedule(None, total_steps=self.TOTAL, base_lr=self.LR)
        for t in range(self.TOTAL):
            assert sched.lr_at(t) == pytest.approx(FS.step_lr(t, self.TOTAL, self.LR))

    def test_delayed_linear(self):
        sched = DelayedLinearSchedule(None, total_steps=self.TOTAL, delay_fraction=0.5, base_lr=self.LR)
        for t in range(self.TOTAL):
            assert sched.lr_at(t) == pytest.approx(
                FS.delayed_linear_lr(t, self.TOTAL, self.LR, 0.5)
            )

    def test_onecycle(self):
        sched = OneCycleSchedule(None, total_steps=self.TOTAL, base_lr=self.LR)
        for t in range(self.TOTAL):
            assert sched.lr_at(t) == pytest.approx(FS.onecycle_lr(t, self.TOTAL, self.LR))

    def test_functional_validation(self):
        with pytest.raises(ValueError):
            FS.rex_lr(-1, 10, 0.1)
        with pytest.raises(ValueError):
            FS.linear_lr(11, 10, 0.1)
        with pytest.raises(ValueError):
            FS.exponential_lr(1, 10, 0.1, gamma=1.0)
        with pytest.raises(ValueError):
            FS.delayed_linear_lr(1, 10, 0.1, delay_fraction=1.0)


class TestStepAndSampling:
    def test_step_schedule_decays_at_milestones(self):
        sched = StepSchedule(None, total_steps=100, base_lr=1.0)
        seq = sched.sequence()
        assert seq[0] == 1.0
        assert seq[49] == 1.0
        assert seq[50] == pytest.approx(0.1)
        assert seq[75] == pytest.approx(0.01)

    def test_profile_schedule_with_milestone_sampling_holds_lr(self):
        sched = ProfileSchedule(
            None,
            total_steps=100,
            profile=LinearProfile(),
            sampling=Milestones([0.5]),
            base_lr=1.0,
        )
        seq = sched.sequence()
        assert np.all(seq[:50] == 1.0)
        np.testing.assert_allclose(seq[50:], 0.5)

    def test_min_lr_floor(self):
        sched = LinearSchedule(None, total_steps=10, base_lr=1.0, min_lr=0.2)
        assert min(sched.sequence()) >= 0.2


class TestOneCycle:
    def test_lr_peaks_at_midpoint(self):
        sched = OneCycleSchedule(None, total_steps=100, base_lr=1.0)
        seq = sched.sequence()
        assert np.argmax(seq) == pytest.approx(50, abs=1)
        assert seq[0] == pytest.approx(0.1)
        assert max(seq) <= 1.0 + 1e-12

    def test_momentum_cycles_opposite_to_lr(self):
        opt = make_optimizer(lr=1.0, momentum=0.9)
        sched = OneCycleSchedule(opt, total_steps=10)
        momenta = []
        for _ in range(10):
            sched.step()
            momenta.append(opt.param_groups[0]["momentum"])
        assert momenta[0] == pytest.approx(0.95)
        assert min(momenta) == pytest.approx(0.85, abs=0.02)
        assert momenta[-1] > momenta[len(momenta) // 2]

    def test_adam_betas_are_cycled(self):
        opt = Adam([Parameter(np.zeros(2))], lr=0.01)
        sched = OneCycleSchedule(opt, total_steps=4)
        sched.step()
        beta1, beta2 = opt.param_groups[0]["betas"]
        assert beta1 == pytest.approx(0.95)
        assert beta2 == pytest.approx(0.999)

    def test_validation(self):
        with pytest.raises(ValueError):
            OneCycleSchedule(None, total_steps=10, base_lr=1.0, lr_ratio=0.0)
        with pytest.raises(ValueError):
            OneCycleSchedule(None, total_steps=10, base_lr=1.0, beta_min=0.99, beta_max=0.9)


class TestPlateau:
    def test_decays_after_patience_epochs_without_improvement(self):
        sched = DecayOnPlateauSchedule(None, total_steps=100, base_lr=1.0, patience=2, factor=0.1)
        assert not sched.epoch_end(1.0)   # first value becomes best
        assert not sched.epoch_end(1.0)   # bad epoch 1
        assert not sched.epoch_end(1.0)   # bad epoch 2
        assert sched.epoch_end(1.0)       # bad epoch 3 > patience -> decay
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.num_reductions == 1

    def test_improvement_resets_counter(self):
        sched = DecayOnPlateauSchedule(None, total_steps=100, base_lr=1.0, patience=1)
        sched.epoch_end(1.0)
        sched.epoch_end(1.0)
        sched.epoch_end(0.5)  # improvement
        assert sched.bad_epochs == 0
        assert sched.lr_at(0) == 1.0

    def test_max_mode(self):
        sched = DecayOnPlateauSchedule(None, total_steps=10, base_lr=1.0, patience=1, mode="max")
        sched.epoch_end(0.5)
        sched.epoch_end(0.9)
        assert sched.best_metric == 0.9

    def test_min_lr_floor_and_state_dict(self):
        sched = DecayOnPlateauSchedule(
            None, total_steps=10, base_lr=1.0, patience=1, factor=0.1, min_lr=0.05
        )
        for _ in range(20):
            sched.epoch_end(1.0)
        assert sched.current_lr >= 0.05
        state = sched.state_dict()
        other = DecayOnPlateauSchedule(None, total_steps=10, base_lr=1.0)
        other.load_state_dict(state)
        assert other.current_lr == sched.current_lr

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayOnPlateauSchedule(None, total_steps=10, base_lr=1.0, factor=2.0)
        with pytest.raises(ValueError):
            DecayOnPlateauSchedule(None, total_steps=10, base_lr=1.0, mode="bad")


class TestWarmup:
    def test_warmup_ramps_then_delegates(self):
        inner = LinearSchedule(None, total_steps=10, base_lr=1.0)
        wrapped = WarmupWrapper(inner, warmup_steps=5, warmup_start_lr=0.0)
        seq = wrapped.sequence()
        assert len(seq) == 15
        assert np.all(np.diff(seq[:5]) > 0)        # increasing during warmup
        assert seq[5] == pytest.approx(1.0)         # inner schedule starts at base LR
        np.testing.assert_allclose(seq[5:], inner.sequence())

    def test_warmup_step_drives_inner_schedule(self):
        opt = make_optimizer(lr=1.0)
        inner = LinearSchedule(opt, total_steps=4)
        wrapped = WarmupWrapper(inner, warmup_steps=2, warmup_start_lr=0.1)
        lrs = [wrapped.step() for _ in range(6)]
        np.testing.assert_allclose(lrs[2:], inner.sequence())
        assert lrs[0] < lrs[1] < 1.0 + 1e-12

    def test_zero_warmup_is_identity(self):
        inner = CosineSchedule(None, total_steps=8, base_lr=0.5)
        wrapped = WarmupWrapper(inner, warmup_steps=0)
        np.testing.assert_allclose(wrapped.sequence(), inner.sequence())

    def test_validation(self):
        inner = LinearSchedule(None, total_steps=4, base_lr=1.0)
        with pytest.raises(ValueError):
            WarmupWrapper(inner, warmup_steps=-1)


class TestCyclic:
    def test_triangular_cycles(self):
        sched = TriangularCyclicSchedule(None, total_steps=100, base_lr=1.0, num_cycles=2)
        seq = sched.sequence()
        # two peaks, one per cycle
        assert seq[25] == pytest.approx(max(seq), rel=0.05)
        assert seq[75] == pytest.approx(max(seq), rel=0.05)
        assert min(seq) >= 0.1 - 1e-9

    def test_cosine_restarts(self):
        sched = CosineWarmRestartsSchedule(None, total_steps=100, base_lr=1.0, num_cycles=2)
        seq = sched.sequence()
        assert seq[0] == pytest.approx(1.0)
        assert seq[50] == pytest.approx(1.0)  # restart
        assert seq[49] < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            TriangularCyclicSchedule(None, total_steps=10, base_lr=1.0, num_cycles=0)
        with pytest.raises(ValueError):
            CosineWarmRestartsSchedule(None, total_steps=10, base_lr=1.0, num_cycles=0)


class TestRegistry:
    def test_paper_schedules_are_all_registered(self):
        available = available_schedules()
        for name in PAPER_SCHEDULES:
            assert name in available

    def test_build_schedule_by_name(self):
        opt = make_optimizer()
        for name in PAPER_SCHEDULES:
            sched = build_schedule(name, opt, total_steps=20)
            assert sched.total_steps == 20
        rex = build_schedule("REX", None, total_steps=10, base_lr=0.1)
        assert isinstance(rex, REXSchedule)

    def test_build_with_kwargs(self):
        sched = build_schedule("delayed_linear", None, total_steps=10, base_lr=1.0, delay_fraction=0.5)
        assert isinstance(sched, DelayedLinearSchedule)
        assert sched.delay_fraction == 0.5
        exp = build_schedule("exponential", None, total_steps=10, base_lr=1.0, gamma=-5.0)
        assert exp.lr_at(9) < ExponentialSchedule(None, 10, base_lr=1.0).lr_at(9)

    def test_unknown_schedule(self):
        with pytest.raises(KeyError):
            build_schedule("nope", None, total_steps=10, base_lr=1.0)

    def test_register_custom_schedule(self):
        class MySchedule(ConstantSchedule):
            name = "my_custom"

        register_schedule("my_custom", MySchedule)
        assert isinstance(build_schedule("my_custom", None, total_steps=5, base_lr=1.0), MySchedule)
        with pytest.raises(ValueError):
            register_schedule("my_custom", MySchedule)
        register_schedule("my_custom", MySchedule, overwrite=True)

    def test_polynomial_schedule(self):
        sched = PolynomialSchedule(None, total_steps=10, base_lr=1.0, power=2.0)
        assert sched.lr_at(5) == pytest.approx((1 - 0.5) ** 2)
