"""Tests for the deterministic fault-injection layer (:mod:`repro.faults`).

Covers the plan contract (seeded hash decisions, fnmatch sites, occurrence
counting, max_fires budgets, serialization round-trip, bit-identical replay),
the payload corruptor, and each injector against its real seam: the local
cache's quarantine path, the HTTP client's retry loop, and the worker's
crash hook.
"""

from __future__ import annotations

import json

import pytest

from repro.execution import (
    CacheServer,
    HTTPRunCache,
    InMemoryRunCache,
    RunCache,
    entry_payload,
    verify_entry,
)
from repro.execution.retry import RetryPolicy
from repro.faults import (
    FaultPlan,
    FaultRule,
    FaultyHTTPRunCache,
    FaultyRunCache,
    FaultyRunFn,
    InjectedCrash,
    InjectedFault,
    build_plan,
    corrupt_payload_bytes,
    get_scenario,
)

from tests.test_fabric import make_record, tiny_config

FAST = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestFaultRule:
    def test_defaults(self):
        rule = FaultRule(site="remote.*")
        assert rule.kind == "error" and rule.rate == 1.0 and rule.max_fires is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="explode"),
            dict(rate=-0.1),
            dict(rate=1.5),
            dict(max_fires=0),
            dict(delay=-1.0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(site="x", **kwargs)

    def test_dict_round_trip(self):
        rule = FaultRule(site="cache.get", kind="corrupt", rate=0.3, max_fires=2, delay=0.1)
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_rate_one_always_fires_rate_zero_never(self):
        always = FaultPlan([FaultRule(site="s", rate=1.0)])
        never = FaultPlan([FaultRule(site="s", rate=0.0)])
        assert all(always.decide("s", f"k{i}") is not None for i in range(10))
        assert all(never.decide("s", f"k{i}") is None for i in range(10))
        assert always.total_fired == 10 and never.total_fired == 0

    def test_site_patterns_are_fnmatch(self):
        plan = FaultPlan([FaultRule(site="remote.*")])
        assert plan.decide("remote.get", "k") is not None
        assert plan.decide("remote.put", "k") is not None
        assert plan.decide("cache.get", "k") is None

    def test_partial_rate_is_deterministic_and_partial(self):
        def fires(seed):
            plan = FaultPlan([FaultRule(site="s", rate=0.3)], seed=seed)
            return [plan.decide("s", f"key{i}") is not None for i in range(200)]

        first = fires(0)
        assert first == fires(0)  # bit-identical replay
        assert 20 < sum(first) < 100  # ~30% of 200, loosely
        assert first != fires(1)  # a different seed is a different stream

    def test_occurrence_counting_is_per_site_and_key(self):
        # rate draws hash the occurrence index: the same key hitting the same
        # site repeatedly sees an evolving stream, not one frozen decision
        plan = FaultPlan([FaultRule(site="s", rate=0.5)])
        outcomes = {plan.decide("s", "same-key") is not None for _ in range(50)}
        assert outcomes == {True, False}

    def test_max_fires_caps_a_rule(self):
        plan = FaultPlan([FaultRule(site="s", rate=1.0, max_fires=2)])
        outcomes = [plan.decide("s", f"k{i}") is not None for i in range(5)]
        assert outcomes == [True, True, False, False, False]
        assert plan.fired == {"s": 2}

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind="corrupt", max_fires=1), FaultRule(site="s", kind="error")]
        )
        assert plan.decide("s", "a").kind == "corrupt"
        assert plan.decide("s", "b").kind == "error"

    def test_fire_raises_injected_crash(self):
        plan = FaultPlan([FaultRule(site="worker.*", kind="crash", max_fires=1)])
        with pytest.raises(InjectedCrash):
            plan.fire("worker.after_lease", "fp")
        plan.fire("worker.after_lease", "fp")  # budget spent: no raise
        assert plan.fired == {"worker.after_lease": 1}

    def test_injected_crash_evades_except_exception(self):
        # the property the worker-crash scenario depends on: recovery code
        # written as `except Exception` must not absorb a simulated death
        with pytest.raises(InjectedCrash):
            try:
                raise InjectedCrash("boom")
            except Exception:  # noqa: BLE001
                pytest.fail("InjectedCrash must not be an Exception")

    def test_serialization_round_trip_replays_identically(self):
        plan = FaultPlan([FaultRule(site="s", rate=0.4)], seed=7)
        clone = FaultPlan.from_dict(plan.to_dict())

        def drive(p):
            return [p.decide("s", f"k{i}") is not None for i in range(50)]

        assert drive(plan) == drive(clone)

    def test_reset_restores_a_fresh_replay(self):
        plan = FaultPlan([FaultRule(site="s", rate=0.5)])
        first = [plan.decide("s", "k") is not None for _ in range(20)]
        plan.reset()
        assert [plan.decide("s", "k") is not None for _ in range(20)] == first
        assert plan._occurrences[("s", "k")] == 20


class TestCorruptPayloadBytes:
    def test_tampered_payload_fails_verification(self):
        config, record = tiny_config(), make_record()
        blob = json.dumps(entry_payload(config, record)).encode()
        fingerprint = json.loads(blob)["fingerprint"]
        assert verify_entry(fingerprint, json.loads(blob)) is not None
        tampered = corrupt_payload_bytes(blob)
        assert tampered != blob
        with pytest.raises((ValueError, json.JSONDecodeError)):
            verify_entry(fingerprint, json.loads(tampered))

    def test_corruption_is_deterministic(self):
        blob = json.dumps(entry_payload(tiny_config(), make_record())).encode()
        assert corrupt_payload_bytes(blob) == corrupt_payload_bytes(blob)

    def test_payload_without_integrity_is_torn(self):
        blob = b'{"no": "integrity field here"}'
        torn = corrupt_payload_bytes(blob)
        assert torn == blob[: len(blob) // 2]


class TestFaultyRunCache:
    def test_requires_a_directory_cache(self):
        with pytest.raises(TypeError):
            FaultyRunCache(InMemoryRunCache(), FaultPlan())

    def test_corrupt_on_get_quarantines_and_misses(self, tmp_path):
        inner = RunCache(tmp_path / "cache")
        faulty = FaultyRunCache(inner, FaultPlan([FaultRule(site="cache.get", kind="corrupt")]))
        config, record = tiny_config(), make_record()
        faulty.put(config, record)
        assert faulty.get(config) is None  # rotted on read -> quarantined miss
        assert inner.stats.corrupt == 1
        assert len(list(inner.quarantine_dir.glob("*.corrupt"))) == 1
        # the rotten entry is gone: a clean re-put round-trips again
        faulty.put(config, record)
        faulty.plan.reset()
        restored = FaultyRunCache(inner, FaultPlan())  # no rules: clean reads
        assert restored.get(config) == record

    def test_cold_get_never_consults_the_plan(self, tmp_path):
        plan = FaultPlan([FaultRule(site="cache.get", kind="error")])
        faulty = FaultyRunCache(RunCache(tmp_path / "cache"), plan)
        assert faulty.get(tiny_config()) is None  # plain miss, no injection
        assert plan.total_fired == 0

    def test_error_kind_raises_injected_fault(self, tmp_path):
        faulty = FaultyRunCache(
            RunCache(tmp_path / "cache"), FaultPlan([FaultRule(site="cache.get", kind="error")])
        )
        faulty.put(tiny_config(), make_record())
        with pytest.raises(InjectedFault):
            faulty.get(tiny_config())


@pytest.fixture()
def cache_server(tmp_path):
    server = CacheServer(tmp_path / "store").start()
    yield server
    server.stop()


class TestFaultyHTTPRunCache:
    def test_transport_errors_are_retried_through(self, cache_server):
        # one injected error per key: the production retry loop absorbs it
        plan = FaultPlan([FaultRule(site="remote.*", kind="error", max_fires=1)])
        faulty = FaultyHTTPRunCache(cache_server.url, plan, retry_policy=FAST)
        config, record = tiny_config(), make_record()
        faulty.put(config, record)
        assert faulty.get(config) == record
        assert plan.total_fired == 1
        assert faulty.stats.retries >= 1 and faulty.stats.errors == 0

    def test_injected_503_is_transient(self, cache_server):
        plan = FaultPlan([FaultRule(site="remote.get", kind="status", max_fires=1)])
        faulty = FaultyHTTPRunCache(cache_server.url, plan, retry_policy=FAST)
        config, record = tiny_config(), make_record()
        faulty.put(config, record)
        assert faulty.get(config) == record
        assert faulty.stats.retries >= 1

    def test_persistent_errors_exhaust_to_cache_error(self, cache_server):
        plan = FaultPlan([FaultRule(site="remote.get", kind="error")])  # every attempt
        faulty = FaultyHTTPRunCache(cache_server.url, plan, retry_policy=FAST)
        config, record = tiny_config(), make_record()
        faulty.put(config, record)
        assert faulty.get(config) is None
        assert faulty.stats.errors == 1 and faulty.stats.hits == 0

    def test_corrupt_response_is_a_verified_miss(self, cache_server):
        plan = FaultPlan([FaultRule(site="remote.get", kind="corrupt")])
        faulty = FaultyHTTPRunCache(cache_server.url, plan, retry_policy=FAST)
        config, record = tiny_config(), make_record()
        faulty.put(config, record)
        assert faulty.get(config) is None  # tampered body fails verification
        assert faulty.stats.corrupt == 1 and faulty.stats.misses == 1
        # the server-side entry is untouched: a clean client still reads it
        clean = HTTPRunCache(cache_server.url)
        assert clean.get(config) == record


class TestFaultyRunFn:
    def test_fails_each_cell_exactly_once(self, tmp_path):
        fn = FaultyRunFn(marker_dir=str(tmp_path / "markers"), rate=1.0)
        cell = tiny_config()
        with pytest.raises(InjectedFault):
            fn(cell)
        assert fn.fired() == 1
        record = fn(cell)  # the retry lands
        assert record.setting == cell.setting
        assert fn.fired() == 1  # still one: no double-failing

    def test_rate_zero_never_fails(self, tmp_path):
        fn = FaultyRunFn(marker_dir=str(tmp_path / "markers"), rate=0.0)
        assert fn(tiny_config()) is not None
        assert fn.fired() == 0


class TestScenarios:
    def test_registry_names_resolve(self):
        for name in ("corrupt-cache", "flaky-remote", "worker-crash"):
            assert get_scenario(name).name == name
        assert get_scenario("FLAKY-REMOTE").name == "flaky-remote"
        with pytest.raises(KeyError):
            get_scenario("nope")

    def test_build_plan_rate_override(self):
        scenario = get_scenario("flaky-remote")
        plan = build_plan(scenario, rate=1.0, seed=3)
        assert all(rule.rate == 1.0 for rule in plan.rules)
        assert plan.seed == 3
        # the scenario itself is untouched (frozen data)
        assert all(rule.rate == 0.3 for rule in scenario.rules)
