"""Tests for the proxy GLUE task suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GLUE_TASKS, SyntheticGlueTask, glue_task_specs
from repro.data.synthetic import SequenceTaskSpec, make_sequence_classification


class TestTaskSpecs:
    def test_eight_tasks_matching_the_paper(self):
        tasks = glue_task_specs()
        names = [t.name for t in tasks]
        assert sorted(names) == sorted(GLUE_TASKS)
        assert "WNLI" not in names  # excluded, as in the paper
        assert len(tasks) == 8

    def test_task_types(self):
        by_name = {t.name: t for t in glue_task_specs()}
        assert by_name["STS-B"].spec.regression
        assert by_name["MNLI"].spec.num_classes == 3
        assert not by_name["CoLA"].spec.pair
        assert by_name["MRPC"].spec.pair
        assert by_name["CoLA"].metric == "matthews"
        assert by_name["QQP"].metric == "f1"
        assert by_name["STS-B"].metric == "pearson_spearman"

    def test_relative_sizes_follow_glue(self):
        by_name = {t.name: t for t in glue_task_specs()}
        assert by_name["MNLI"].spec.num_train > by_name["RTE"].spec.num_train
        assert by_name["QQP"].spec.num_train > by_name["MRPC"].spec.num_train

    def test_size_scale_validation(self):
        with pytest.raises(ValueError):
            glue_task_specs(size_scale=0.0)


class TestSequenceGeneration:
    def test_single_sentence_task(self):
        spec = SequenceTaskSpec(name="toy", num_train=64, num_test=32, seq_len=12, vocab_size=32)
        tr_tok, tr_seg, tr_y, te_tok, te_seg, te_y = make_sequence_classification(spec, seed=0)
        assert tr_tok.shape == (64, 12)
        assert te_tok.shape == (32, 12)
        assert tr_seg.max() == 0  # single sentence -> one segment
        assert set(np.unique(tr_y)) <= {0, 1}
        assert np.all(tr_tok[:, 0] == 1)  # CLS token

    def test_pair_task_has_two_segments(self):
        spec = SequenceTaskSpec(name="pair", num_train=64, num_test=32, pair=True)
        _, segments, _, _, _, _ = make_sequence_classification(spec, seed=0)
        assert set(np.unique(segments)) == {0, 1}

    def test_regression_labels_are_continuous(self):
        spec = SequenceTaskSpec(name="reg", num_train=64, num_test=32, pair=True, regression=True, num_classes=1)
        _, _, labels, _, _, _ = make_sequence_classification(spec, seed=0)
        assert labels.dtype == np.float64
        assert len(np.unique(labels)) > 10

    def test_labels_are_learnable_from_tokens(self):
        """The single-sentence label must correlate with the token-balance feature."""
        spec = SequenceTaskSpec(name="learnable", num_train=256, num_test=32, label_noise=0.0)
        tokens, _, labels, _, _, _ = make_sequence_classification(spec, seed=0)
        feature = (tokens >= spec.vocab_size // 2).mean(axis=1)
        # point-biserial correlation between the feature and the binary label
        corr = np.corrcoef(feature, labels)[0, 1]
        assert corr > 0.5

    def test_determinism(self):
        spec = SequenceTaskSpec(name="det", num_train=32, num_test=16)
        a = make_sequence_classification(spec, seed=3)
        b = make_sequence_classification(spec, seed=3)
        for arr_a, arr_b in zip(a, b):
            np.testing.assert_array_equal(arr_a, arr_b)

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceTaskSpec(name="bad", num_train=10, num_test=5, seq_len=2)
        with pytest.raises(ValueError):
            SequenceTaskSpec(name="bad", num_train=10, num_test=5, vocab_size=4)


class TestGlueDataset:
    def test_dataset_fields(self):
        task = glue_task_specs(size_scale=0.5)[0]
        train, test = SyntheticGlueTask.splits(task, seed=0)
        tokens, segments, label = train[0]
        assert tokens.shape == (task.spec.seq_len,)
        assert segments.shape == (task.spec.seq_len,)
        assert len(train) == task.spec.num_train
        assert len(test) == task.spec.num_test

    def test_invalid_split(self):
        task = glue_task_specs(size_scale=0.5)[0]
        with pytest.raises(ValueError):
            SyntheticGlueTask(task, "dev")
