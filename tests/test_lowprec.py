"""Tests for mixed-precision training: master weights, loss scaling, caching.

The tentpole invariants:

* sub-ULP optimizer updates accumulate in the float32 masters instead of
  being lost to the emulated grid (no stagnation);
* a loss-scaled run that never overflows is *bitwise identical* to an
  unscaled run (power-of-two scales are exact exponent shifts);
* overflowed steps are skipped — parameters untouched, scale halved — and
  the scale recovers after ``growth_interval`` clean steps, with the exact
  trajectory pinned in ``golden/loss_scale.json``;
* emulated-dtype cells fingerprint distinctly and FINGERPRINT_VERSION 3
  invalidates every pre-existing cache entry.

Regenerate the golden trajectory (after an *intentional* change) with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_lowprec.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.nn.dtype import BFLOAT16, FLOAT16, default_dtype
from repro.nn.lowprec import LossScaler, LowPrecisionState, MasterWeights, grads_finite
from repro.optim import SGD, build_optimizer

GOLDEN_PATH = Path(__file__).parent / "golden" / "loss_scale.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") == "1"


class TestLossScaler:
    def test_defaults_and_state(self):
        scaler = LossScaler()
        assert scaler.scale == 2.0**15
        assert scaler.state() == {
            "scale": 2.0**15,
            "applied_steps": 0,
            "skipped_steps": 0,
            "overflows": 0,
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"init_scale": 3.0},
            {"init_scale": 0.0},
            {"init_scale": -2.0},
            {"growth_factor": 3.0},
            {"backoff_factor": 0.3},
            {"min_scale": 1.5},
            {"max_scale": 12.0},
        ],
    )
    def test_non_power_of_two_rejected(self, kwargs):
        # exactness of scale/unscale (and hence the bitwise oracles) depends
        # on every factor being a power of two
        with pytest.raises(ValueError, match="power of two"):
            LossScaler(**kwargs)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"growth_factor": 1.0}, "growth_factor"),
            ({"backoff_factor": 1.0}, "power of two|backoff_factor"),
            ({"growth_interval": 0}, "growth_interval"),
        ],
    )
    def test_degenerate_factors_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            LossScaler(**kwargs)

    def test_overflow_halves_scale_and_resets_growth(self):
        scaler = LossScaler(init_scale=2.0**8, growth_interval=2)
        scaler.update(found_overflow=False)
        scaler.update(found_overflow=True)  # growth streak broken at 1
        assert scaler.scale == 2.0**7
        assert (scaler.applied_steps, scaler.skipped_steps, scaler.overflows) == (1, 1, 1)
        # the streak restarted: two *more* clean steps are needed to grow
        scaler.update(found_overflow=False)
        assert scaler.scale == 2.0**7
        scaler.update(found_overflow=False)
        assert scaler.scale == 2.0**8

    def test_scale_clamped_to_min_and_max(self):
        scaler = LossScaler(init_scale=2.0, min_scale=1.0, max_scale=4.0, growth_interval=1)
        scaler.update(found_overflow=True)
        scaler.update(found_overflow=True)
        assert scaler.scale == 1.0  # floor, not 0.5
        for _ in range(5):
            scaler.update(found_overflow=False)
        assert scaler.scale == 4.0  # ceiling, not 32

    def test_applied_steps_exclude_skips(self):
        scaler = LossScaler(init_scale=2.0**4, growth_interval=100)
        outcomes = [False, True, False, False, True, False]
        for overflow in outcomes:
            scaler.update(found_overflow=overflow)
        assert scaler.applied_steps == 4
        assert scaler.skipped_steps == 2
        assert len(scaler.trajectory) == len(outcomes)


class TestGradsFinite:
    def test_detects_inf_and_nan(self):
        with default_dtype("float32"):
            model = nn.Linear(3, 2, rng=np.random.default_rng(0))
        params = model.parameters()
        for p in params:
            p.grad = np.zeros_like(p.data)
        assert grads_finite(params)
        params[0].grad[0, 0] = np.inf
        assert not grads_finite(params)
        params[0].grad[0, 0] = np.nan
        assert not grads_finite(params)
        params[0].grad = None  # absent gradients are not overflows
        assert grads_finite(params)


class TestMasterWeights:
    def test_sub_ulp_updates_accumulate_instead_of_stagnating(self):
        # bf16 ULP at 1.0 is 2^-7; an update of 2^-10 per step is invisible
        # to the grid but must accumulate in the masters and move the
        # published weights after enough steps
        with default_dtype("bfloat16"):
            p = nn.Parameter(np.ones(4, dtype=np.float32))
        masters = MasterWeights([p], BFLOAT16)
        opt = SGD([p], lr=1.0)
        for _ in range(16):
            p.grad = np.full(4, 2.0**-10, dtype=np.float32)
            masters.restore_()
            opt.step()
            masters.store_()
        # 16 * 2^-10 = 2^-6 = 2 bf16 ULPs of drift, visible on the grid
        np.testing.assert_array_equal(p.data, np.float32(1.0 - 2.0**-6))
        # without masters the same loop goes nowhere: each stepped value
        # 1.0 - 2^-10 rounds straight back to 1.0
        q = BFLOAT16.quantize(np.float32([1.0 - 2.0**-10]))
        assert q[0] == np.float32(1.0)

    def test_param_data_identity_preserved(self):
        with default_dtype("bfloat16"):
            p = nn.Parameter(np.ones(3, dtype=np.float32))
        buf = p.data
        masters = MasterWeights([p], BFLOAT16)
        p.grad = np.full(3, 0.25, dtype=np.float32)
        masters.restore_()
        SGD([p], lr=0.5).step()
        masters.store_()
        assert p.data is buf  # plans/scratch alias this array by identity

    def test_published_values_always_on_grid(self):
        rng = np.random.default_rng(0)
        with default_dtype("bfloat16"):
            p = nn.Parameter(rng.standard_normal(32).astype(np.float32))
        masters = MasterWeights([p], BFLOAT16)
        opt = SGD([p], lr=0.137)
        for _ in range(5):
            p.grad = rng.standard_normal(32).astype(np.float32)
            masters.restore_()
            opt.step()
            masters.store_()
            np.testing.assert_array_equal(p.data, BFLOAT16.quantize(p.data))

    def test_stochastic_rounding_store_is_seed_deterministic(self):
        def run(seed):
            rng = np.random.default_rng(3)
            with default_dtype("float16"):
                p = nn.Parameter(rng.standard_normal(64).astype(np.float32))
            masters = MasterWeights([p], FLOAT16, stochastic_rounding=True, seed=seed)
            opt = SGD([p], lr=0.01)
            for _ in range(8):
                p.grad = rng.standard_normal(64).astype(np.float32)
                masters.restore_()
                opt.step()
                masters.store_()
            return p.data.copy()

        np.testing.assert_array_equal(run(seed=5), run(seed=5))
        assert not np.array_equal(run(seed=5), run(seed=6))


def _tiny_problem(dtype="bfloat16", seed=0):
    """A Linear regression cell: model, inputs, targets, param list."""
    rng = np.random.default_rng(seed)
    with default_dtype(dtype):
        model = nn.Linear(6, 4, rng=rng)
    x = rng.standard_normal((8, 6))
    y = rng.standard_normal((8, 4))
    return model, x, y


def _loss(model, x, y, dtype="bfloat16"):
    with default_dtype(dtype):
        pred = model(nn.Tensor(x))
        return ((pred - nn.Tensor(y)) * (pred - nn.Tensor(y))).sum()


class TestLowPrecisionState:
    def test_scaled_run_bitwise_equals_unscaled_when_no_overflow(self):
        def run(scaler):
            model, x, y = _tiny_problem()
            params = model.parameters()
            state = LowPrecisionState(params, BFLOAT16, loss_scaler=scaler)
            opt = SGD(params, lr=0.05, momentum=0.9)
            for _ in range(6):
                for p in params:
                    p.zero_grad()
                loss = _loss(model, x, y)
                with default_dtype("bfloat16"):
                    loss.backward(state.grad_seed(loss))
                assert state.step(opt)
            return [p.data.copy() for p in params]

        unscaled = run(LossScaler(init_scale=1.0, min_scale=1.0))
        scaled = run(LossScaler(init_scale=2.0**12))
        for a, b in zip(unscaled, scaled):
            np.testing.assert_array_equal(a, b)

    def test_overflow_skips_step_and_backs_off(self):
        model, x, y = _tiny_problem()
        params = model.parameters()
        state = LowPrecisionState(params, BFLOAT16, loss_scaler=LossScaler(init_scale=2.0**6))
        opt = SGD(params, lr=0.05)
        before = [p.data.copy() for p in params]
        params[0].grad = np.full_like(params[0].data, np.inf)
        assert state.found_overflow()
        assert state.step(opt) is False
        for p, orig in zip(params, before):
            np.testing.assert_array_equal(p.data, orig)  # step skipped
        assert state.scaler.scale == 2.0**5
        assert state.scaler.state()["skipped_steps"] == 1

    def test_grad_seed_matches_loss_shape_and_scale(self):
        model, x, y = _tiny_problem()
        state = LowPrecisionState(model.parameters(), BFLOAT16, loss_scaler=LossScaler(init_scale=4.0))
        loss = _loss(model, x, y)
        seed = state.grad_seed(loss)
        assert seed.shape == loss.data.shape and seed.dtype == loss.data.dtype
        assert np.all(seed == 4.0)


# ---------------------------------------------------------------------------
# golden trajectory: forced-overflow loss-scale dynamics pinned step by step
# ---------------------------------------------------------------------------

#: steps whose gradients are forced to overflow (0-indexed attempts)
OVERFLOW_AT = (0, 1, 7)
TOTAL_ATTEMPTS = 16
GOLDEN_PARAMS = dict(init_scale=2.0**10, growth_interval=4, min_scale=1.0, max_scale=2.0**16)


def _forced_overflow_trajectory() -> dict:
    """Run a real train loop, injecting inf gradients at OVERFLOW_AT steps."""
    model, x, y = _tiny_problem(seed=1)
    params = model.parameters()
    state = LowPrecisionState(params, BFLOAT16, loss_scaler=LossScaler(**GOLDEN_PARAMS))
    opt = SGD(params, lr=0.05)
    for step in range(TOTAL_ATTEMPTS):
        for p in params:
            p.zero_grad()
        loss = _loss(model, x, y)
        with default_dtype("bfloat16"):
            loss.backward(state.grad_seed(loss))
        if step in OVERFLOW_AT:
            params[0].grad[0, 0] = np.inf
        state.step(opt)
    return {
        "params": {k: float(v) for k, v in GOLDEN_PARAMS.items() if k != "growth_interval"}
        | {"growth_interval": GOLDEN_PARAMS["growth_interval"]},
        "overflow_at": list(OVERFLOW_AT),
        "trajectory": state.scaler.trajectory,
        "final": state.scaler.state(),
    }


class TestGoldenLossScaleTrajectory:
    def _golden(self) -> dict:
        if REGEN:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps(_forced_overflow_trajectory(), indent=2) + "\n")
        assert GOLDEN_PATH.exists(), (
            "golden snapshot missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        return json.loads(GOLDEN_PATH.read_text())

    def test_trajectory_matches_golden_exactly(self):
        golden = self._golden()
        current = _forced_overflow_trajectory()
        assert current["trajectory"] == golden["trajectory"]
        assert current["final"] == golden["final"]
        assert current["overflow_at"] == golden["overflow_at"]

    def test_trajectory_properties(self):
        # independent of the snapshot: the dynamics the golden file pins
        traj = _forced_overflow_trajectory()["trajectory"]
        assert len(traj) == TOTAL_ATTEMPTS
        # every forced overflow is recorded as a skip and halves the scale
        for i in OVERFLOW_AT:
            assert traj[i]["applied"] is False
            assert traj[i + 1]["scale"] == traj[i]["scale"] / 2
        # the scale recovers: growth_interval clean steps after the last
        # overflow, the scale doubles
        last = max(OVERFLOW_AT)
        growth_step = last + 1 + GOLDEN_PARAMS["growth_interval"]
        assert traj[growth_step]["scale"] == traj[last + 1]["scale"] * 2
        # applied_steps excludes the skipped attempts
        applied = sum(1 for t in traj if t["applied"])
        assert applied == TOTAL_ATTEMPTS - len(OVERFLOW_AT)


# ---------------------------------------------------------------------------
# trainer integration + cache invalidation
# ---------------------------------------------------------------------------


class TestTrainerIntegration:
    def test_trainer_builds_lowprec_under_emulation_only(self):
        from repro.experiments.settings import get_setting
        from repro.experiments.workloads import build_workload
        from repro.training.trainer import Trainer

        for dtype, expect in (("bfloat16", True), ("float32", False)):
            with default_dtype(dtype):
                workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.12)
            opt = build_optimizer("sgdm", workload.model.parameters(), lr=0.05)
            trainer = Trainer(
                model=workload.model,
                optimizer=opt,
                task=workload.task,
                train_loader=workload.train_loader,
                dtype=dtype,
            )
            trainer.fit(2)
            assert (trainer.lowprec is not None) is expect
            if expect:
                assert trainer.lowprec.scaler.applied_steps > 0

    def test_skipped_steps_consume_budget(self):
        # the budget counts *attempts*: a run whose first steps overflow
        # still terminates after max_steps attempts
        from repro.experiments.settings import get_setting
        from repro.experiments.workloads import build_workload
        from repro.training.trainer import Trainer

        with default_dtype("float16"):
            workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.12)
        opt = build_optimizer("sgdm", workload.model.parameters(), lr=0.05)
        # a scale far beyond fp16 max: the scaled backward seed overflows the
        # fp16 grid immediately, forcing skip-and-rescale on early steps
        scaler = LossScaler(init_scale=2.0**24, max_scale=2.0**24)
        trainer = Trainer(
            model=workload.model,
            optimizer=opt,
            task=workload.task,
            train_loader=workload.train_loader,
            dtype="float16",
            loss_scaler=scaler,
        )
        trainer.fit(6)
        assert scaler.skipped_steps > 0, "expected early overflow skips"
        assert scaler.applied_steps + scaler.skipped_steps == 6
        assert scaler.scale < 2.0**24  # backed off


class TestCacheInvalidation:
    def test_fingerprint_version_is_part_of_the_payload(self):
        from repro.execution.cache import FINGERPRINT_VERSION, fingerprint_payload
        from repro.experiments.runner import RunConfig

        config = RunConfig(
            setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25
        )
        assert FINGERPRINT_VERSION == 3
        assert fingerprint_payload(config)["version"] == 3

    def test_version_bump_invalidates_prior_entries(self, monkeypatch):
        # a pre-v3 cache entry must never be returned for a v3 config: the
        # fingerprint (hence the cache key) changes with the version
        from repro.execution import cache as cache_mod
        from repro.experiments.runner import RunConfig

        config = RunConfig(
            setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25
        )
        current = cache_mod.config_fingerprint(config)
        monkeypatch.setattr(cache_mod, "FINGERPRINT_VERSION", 2)
        assert cache_mod.config_fingerprint(config) != current
