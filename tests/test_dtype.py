"""Tests for the dtype policy: threading, determinism, and cache fingerprints.

The tentpole invariant: under ``default_dtype("float32")`` every array on the
training hot path — parameters, buffers, activations, gradients, optimizer
state — is float32, and the execution-plan fingerprint keys on the dtype so
float32 and float64 runs of the same cell never collide in the RunCache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.execution import config_fingerprint
from repro.execution.cache import fingerprint_payload
from repro.experiments.runner import RunConfig, run_single
from repro.experiments.settings import get_setting
from repro.experiments.workloads import build_workload
from repro.nn.dtype import default_dtype, dtype_name, get_default_dtype, resolve_dtype, set_default_dtype
from repro.optim import build_optimizer
from repro.training.trainer import Trainer

TINY = dict(size_scale=0.12, epoch_scale=0.1)


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_context_manager_scopes_and_restores(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            with default_dtype("float64"):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_set_default_dtype(self):
        try:
            set_default_dtype(np.float32)
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype("float64")

    def test_resolve_dtype_spellings(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64
        assert resolve_dtype(None) == get_default_dtype()
        assert dtype_name(np.float32) == "float32"

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            resolve_dtype("int32")
        with pytest.raises(ValueError):
            nn.Tensor([1.0], dtype="int64")

    def test_unsupported_dtype_error_lists_supported_spellings(self):
        # regression: the rejection used to say only "unsupported dtype" —
        # now it enumerates every accepted spelling so the CLI/user can fix it
        with pytest.raises(ValueError, match="float32.*float64.*bfloat16.*float16"):
            resolve_dtype("float8")
        with pytest.raises(ValueError, match="bfloat16"):
            resolve_dtype("not-a-dtype")


class TestEmulatedDtypeResolution:
    def test_spellings_resolve_to_singletons(self):
        from repro.nn.dtype import BFLOAT16, FLOAT16

        assert resolve_dtype("bfloat16") is BFLOAT16
        assert resolve_dtype("bf16") is BFLOAT16
        assert resolve_dtype("float16") is FLOAT16
        assert resolve_dtype("fp16") is FLOAT16
        assert resolve_dtype("half") is FLOAT16
        # np.float16 spellings resolve to the emulated policy — there is no
        # native half-precision compute path on the numpy substrate
        assert resolve_dtype(np.float16) is FLOAT16
        assert resolve_dtype(np.dtype(np.float16)) is FLOAT16
        assert resolve_dtype(FLOAT16) is FLOAT16

    def test_names_and_predicates(self):
        from repro.nn.dtype import compute_dtype, is_emulated, storage_dtype

        assert dtype_name("bf16") == "bfloat16"
        assert dtype_name("half") == "float16"
        assert is_emulated("bfloat16") and is_emulated("float16")
        assert not is_emulated("float32") and not is_emulated(np.float64)
        assert storage_dtype("bfloat16") == np.float32
        assert compute_dtype("float16") == np.float32
        assert storage_dtype("float64") == np.float64

    def test_ambient_emulation_scopes_and_restores(self):
        from repro.nn.dtype import BFLOAT16, active_emulation

        assert active_emulation() is None
        with default_dtype("bfloat16"):
            assert active_emulation() is BFLOAT16
            # storage default is a real numpy dtype so np.zeros(...) call
            # sites keep working under emulation
            assert get_default_dtype() == np.float32
            assert resolve_dtype(None) is BFLOAT16
            with default_dtype("float64"):
                assert active_emulation() is None
                assert get_default_dtype() == np.float64
            assert active_emulation() is BFLOAT16
        assert active_emulation() is None
        assert get_default_dtype() == np.float64


class TestQuantization:
    """Deterministic round-to-nearest-even onto the emulated grids."""

    def test_bf16_rounds_to_nearest_even(self):
        from repro.nn.dtype import BFLOAT16

        ulp = 2.0**-7  # bf16 ULP at 1.0 (7 explicit mantissa bits)
        x = np.array([1.0, 1.0 + ulp / 4, 1.0 + ulp / 2, 1.0 + 3 * ulp / 4], dtype=np.float32)
        got = BFLOAT16.quantize(x)
        # the tie at 1.0 + ulp/2 goes to the even mantissa (1.0)
        np.testing.assert_array_equal(got, np.float32([1.0, 1.0, 1.0, 1.0 + ulp]))
        # odd-mantissa tie rounds up to the even neighbour
        tie_up = np.float32(1.0 + 3 * ulp / 2)
        assert BFLOAT16.quantize(np.array([tie_up]))[0] == np.float32(1.0 + 2 * ulp)

    def test_fp16_matches_numpy_half_cast(self):
        from repro.nn.dtype import FLOAT16

        rng = np.random.default_rng(0)
        x = (rng.standard_normal(256) * 100).astype(np.float32)
        np.testing.assert_array_equal(
            FLOAT16.quantize(x), x.astype(np.float16).astype(np.float32)
        )

    @pytest.mark.parametrize("name", ["bfloat16", "float16"])
    def test_nan_inf_and_overflow(self, name):
        policy = resolve_dtype(name)
        with np.errstate(over="ignore"):  # bf16 max * 4 overflows float32 itself
            x = np.array([np.nan, np.inf, -np.inf, policy.max * 4, -policy.max * 4], np.float32)
        got = policy.quantize(x)
        assert np.isnan(got[0])  # NaN never becomes inf (bf16 carry guard)
        np.testing.assert_array_equal(got[1:], [np.inf, -np.inf, np.inf, -np.inf])
        assert policy.quantize(np.array([policy.max], np.float32))[0] == np.float32(policy.max)

    @pytest.mark.parametrize("name", ["bfloat16", "float16"])
    def test_idempotent_and_preserves_zero_sign(self, name):
        policy = resolve_dtype(name)
        x = (np.random.default_rng(1).standard_normal(128)).astype(np.float32)
        once = policy.quantize(x)
        np.testing.assert_array_equal(policy.quantize(once), once)
        signed_zero = policy.quantize(np.array([0.0, -0.0], np.float32))
        assert np.signbit(signed_zero[1]) and not np.signbit(signed_zero[0])

    def test_bf16_non_contiguous_view_falls_back(self):
        from repro.nn.dtype import BFLOAT16

        base = (np.random.default_rng(2).standard_normal((8, 8))).astype(np.float32)
        transposed = base.T.copy().T  # owns data but is not C-contiguous
        assert not transposed.flags.c_contiguous
        expected = BFLOAT16.quantize(np.ascontiguousarray(transposed))
        BFLOAT16.quantize_(transposed)
        np.testing.assert_array_equal(transposed, expected)


class TestStochasticRounding:
    """SR properties: unbiasedness, seed determinism, exact-value fixpoints."""

    @pytest.mark.parametrize(
        "name,ulp", [("bfloat16", 2.0**-7), ("float16", 2.0**-10)]
    )
    def test_unbiased_over_many_draws(self, name, ulp):
        policy = resolve_dtype(name)
        # x sits 30% of the way between grid points 1.0 and 1.0+ulp: RNE
        # would *always* round down, SR must round up ~30% of the time
        x = np.float32(1.0 + 0.3 * ulp)
        rng = np.random.default_rng(42)
        draws = np.empty(20_000, dtype=np.float32)
        for i in range(draws.size):
            draws[i] = policy.stochastic_round_(np.array([x], np.float32), rng)[0]
        assert set(np.unique(draws)) == {np.float32(1.0), np.float32(1.0 + ulp)}
        up_rate = float(np.mean(draws == np.float32(1.0 + ulp)))
        assert abs(up_rate - 0.3) < 0.02, f"SR up-rate {up_rate} biased away from 0.3"
        # E[SR(x)] == x to within sampling noise
        assert abs(float(draws.astype(np.float64).mean()) - float(x)) < 0.01 * ulp

    @pytest.mark.parametrize("name", ["bfloat16", "float16"])
    def test_fixed_seed_is_deterministic(self, name):
        policy = resolve_dtype(name)
        x = (np.random.default_rng(3).standard_normal(64)).astype(np.float32)
        a = policy.stochastic_round_(x.copy(), np.random.default_rng(7))
        b = policy.stochastic_round_(x.copy(), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
        c = policy.stochastic_round_(x.copy(), np.random.default_rng(8))
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("name", ["bfloat16", "float16"])
    def test_exactly_representable_values_never_move(self, name):
        policy = resolve_dtype(name)
        grid = policy.quantize((np.random.default_rng(4).standard_normal(64)).astype(np.float32))
        special = np.array([0.0, -0.0, 1.0, -2.0, np.inf, -np.inf, np.nan], np.float32)
        for _ in range(5):
            rng = np.random.default_rng(11)
            np.testing.assert_array_equal(policy.stochastic_round_(grid.copy(), rng), grid)
            got = policy.stochastic_round_(special.copy(), rng)
            np.testing.assert_array_equal(got[:6], special[:6])
            assert np.isnan(got[6])

    @pytest.mark.parametrize("name", ["bfloat16", "float16"])
    def test_stream_consumption_is_shape_uniform(self, name):
        # an all-on-grid store must consume the same number of draws as an
        # off-grid one, or master-weight SR would de-synchronise across steps
        policy = resolve_dtype(name)
        on_grid = policy.quantize(np.ones(16, np.float32))
        off_grid = on_grid + np.float32(1e-4)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        policy.stochastic_round_(on_grid.copy(), rng_a)
        policy.stochastic_round_(off_grid.copy(), rng_b)
        np.testing.assert_array_equal(rng_a.random(4), rng_b.random(4))


class TestTensorDtypeCoercion:
    def test_leaf_construction_follows_default(self):
        with default_dtype("float32"):
            assert nn.Tensor([1.0, 2.0]).dtype == np.float32
            assert nn.Tensor(np.zeros(3)).dtype == np.float32
        assert nn.Tensor([1.0]).dtype == np.float64

    def test_explicit_dtype_wins(self):
        assert nn.Tensor([1.0], dtype="float32").dtype == np.float32

    def test_integer_data_preserved(self):
        with default_dtype("float32"):
            assert nn.Tensor(np.arange(3)).dtype == np.int64

    def test_constructors_accept_dtype(self):
        assert nn.Tensor.zeros(2, 2, dtype="float32").dtype == np.float32
        assert nn.Tensor.ones(2, dtype="float32").dtype == np.float32
        assert nn.Tensor.randn(2, rng=np.random.default_rng(0), dtype="float32").dtype == np.float32

    def test_randn_stream_identical_across_dtypes(self):
        a = nn.Tensor.randn(5, rng=np.random.default_rng(7), dtype="float64")
        b = nn.Tensor.randn(5, rng=np.random.default_rng(7), dtype="float32")
        np.testing.assert_allclose(a.data, b.data.astype(np.float64), rtol=1e-7)

    def test_astype_is_differentiable(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        y = x.astype("float32") * 3.0
        with default_dtype("float32"):
            z = y.sum()
        z.backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, [3.0, 3.0], rtol=1e-6)

    def test_grad_matches_tensor_dtype(self):
        with default_dtype("float32"):
            x = nn.Tensor([1.0, -2.0], requires_grad=True)
            (x.relu().sum()).backward()
        assert x.grad.dtype == np.float32


class TestEmulatedTensorSemantics:
    """Cast-on-store at the Tensor layer: leaves, op results, leaf gradients."""

    def test_leaf_and_op_results_land_on_grid(self):
        from repro.nn.dtype import BFLOAT16

        with default_dtype("bfloat16"):
            x = nn.Tensor([1.0 + 2.0**-10, 2.0, 3.0])  # off-grid leaf
            assert x.dtype == np.float32
            np.testing.assert_array_equal(x.data, BFLOAT16.quantize(x.data))
            y = x * nn.Tensor([1.1, 1.3, 1.7])
            np.testing.assert_array_equal(y.data, BFLOAT16.quantize(y.data))

    def test_leaf_gradients_quantized_interior_stay_float32(self):
        from repro.nn.dtype import BFLOAT16

        with default_dtype("bfloat16"):
            x = nn.Tensor(np.linspace(0.1, 1.7, 8), requires_grad=True)
            w = nn.Tensor(np.linspace(-1.3, 0.9, 8), requires_grad=True)
            ((x * w).sum() * 1.234).backward()
        for leaf in (x, w):
            assert leaf.grad.dtype == np.float32
            np.testing.assert_array_equal(leaf.grad, BFLOAT16.quantize(leaf.grad))

    def test_explicit_emulated_dtype_without_ambient_policy(self):
        from repro.nn.dtype import FLOAT16

        t = nn.Tensor([1.0 + 2.0**-13], dtype="float16")
        assert t.dtype == np.float32
        np.testing.assert_array_equal(t.data, FLOAT16.quantize(np.float32([1.0 + 2.0**-13])))

    def test_constructors_and_astype_under_emulation(self):
        from repro.nn.dtype import BFLOAT16

        z = nn.Tensor.zeros(2, 2, dtype="bfloat16")
        assert z.dtype == np.float32 and not z.data.any()
        r = nn.Tensor.randn(64, rng=np.random.default_rng(0), dtype="bfloat16")
        np.testing.assert_array_equal(r.data, BFLOAT16.quantize(r.data))
        x = nn.Tensor(np.linspace(0.0, 1.0, 16))
        cast = x.astype("bfloat16")
        assert cast.dtype == np.float32
        np.testing.assert_array_equal(cast.data, BFLOAT16.quantize(x.data.astype(np.float32)))

    def test_parameters_quantized_end_to_end(self):
        from repro.nn.dtype import BFLOAT16

        with default_dtype("bfloat16"):
            model = nn.Linear(6, 5, rng=np.random.default_rng(3))
            for p in model.parameters():
                assert p.dtype == np.float32
                np.testing.assert_array_equal(p.data, BFLOAT16.quantize(p.data))


class TestModelStackDtype:
    def test_parameters_buffers_and_grads_are_float32_end_to_end(self):
        with default_dtype("float32"):
            workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.12)
            model = workload.model
            assert {p.dtype for p in model.parameters()} == {np.dtype(np.float32)}
            for module in model.modules():
                for buf in module._buffers.values():
                    assert buf.dtype == np.float32
            batch = next(iter(workload.train_loader))
            loss = workload.task.compute_loss(model, batch)
            assert loss.dtype == np.float32
            loss.backward()
            assert {p.grad.dtype for p in model.parameters() if p.grad is not None} == {
                np.dtype(np.float32)
            }

    def test_optimizer_state_matches_param_dtype(self):
        with default_dtype("float32"):
            model = nn.Linear(4, 3, rng=np.random.default_rng(0))
            opt = build_optimizer("adam", model.parameters(), lr=0.01)
            model(nn.Tensor(np.ones((2, 4)))).sum().backward()
            opt.step()
        for p in model.parameters():
            state = opt.state_for(p)
            assert state["exp_avg"].dtype == np.float32
            assert state["exp_avg_sq"].dtype == np.float32
            assert p.data.dtype == np.float32

    def test_trainer_dtype_option_scopes_fit(self):
        with default_dtype("float32"):
            workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.12)
        opt = build_optimizer("sgdm", workload.model.parameters(), lr=0.05)
        trainer = Trainer(
            model=workload.model,
            optimizer=opt,
            task=workload.task,
            train_loader=workload.train_loader,
            dtype="float32",
        )
        trainer.fit(2)
        assert {p.dtype for p in workload.model.parameters()} == {np.dtype(np.float32)}

    def test_init_streams_identical_across_dtypes(self):
        with default_dtype("float64"):
            m64 = nn.Linear(6, 5, rng=np.random.default_rng(3))
        with default_dtype("float32"):
            m32 = nn.Linear(6, 5, rng=np.random.default_rng(3))
        np.testing.assert_allclose(m64.weight.data, m32.weight.data.astype(np.float64), rtol=1e-6)


def tiny_config(**overrides) -> RunConfig:
    base = dict(
        setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25, **TINY
    )
    base.update(overrides)
    return RunConfig(**base)


class TestRunConfigDtype:
    def test_resolve_dtype_defaults_to_setting(self):
        assert tiny_config().resolve_dtype() == "float64"
        assert tiny_config(dtype="float32").resolve_dtype() == "float32"

    def test_fingerprint_keys_on_dtype(self):
        f64 = config_fingerprint(tiny_config())
        f32 = config_fingerprint(tiny_config(dtype="float32"))
        assert f64 != f32

    def test_emulated_fingerprints_distinct_from_native(self):
        # bfloat16/float16 cells must never collide with float32 (they share
        # storage dtype but follow different training numerics)
        prints = {
            name: config_fingerprint(tiny_config(dtype=name))
            for name in ("float32", "float64", "bfloat16", "float16")
        }
        assert len(set(prints.values())) == 4
        assert fingerprint_payload(tiny_config(dtype="bfloat16"))["dtype"] == "bfloat16"

    def test_fingerprint_resolves_default_spelling(self):
        # dtype=None and the setting default spelled out are the same cell
        implicit = config_fingerprint(tiny_config())
        explicit = config_fingerprint(tiny_config(dtype="float64"))
        assert implicit == explicit
        assert fingerprint_payload(tiny_config())["dtype"] == "float64"

    def test_run_single_float32_trains_and_records_dtype(self):
        record = run_single(tiny_config(dtype="float32"))
        assert record.extra["dtype"] == "float32"
        assert np.isfinite(record.metric)
        # the override must not leak into the ambient default
        assert get_default_dtype() == np.float64

    def test_float32_deterministic_and_distinct_cache_entries(self, tmp_path):
        from repro.execution import ExperimentEngine

        plan = [tiny_config(dtype="float32")]
        first = ExperimentEngine(cache=tmp_path).run(plan)
        again = ExperimentEngine(cache=tmp_path).run(plan)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in again]
        # a float64 run of the same cell is a different cache entry
        ExperimentEngine(cache=tmp_path).run([tiny_config()])
        assert len(list(tmp_path.glob("*.json"))) == 2
