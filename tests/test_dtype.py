"""Tests for the dtype policy: threading, determinism, and cache fingerprints.

The tentpole invariant: under ``default_dtype("float32")`` every array on the
training hot path — parameters, buffers, activations, gradients, optimizer
state — is float32, and the execution-plan fingerprint keys on the dtype so
float32 and float64 runs of the same cell never collide in the RunCache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.execution import config_fingerprint
from repro.execution.cache import fingerprint_payload
from repro.experiments.runner import RunConfig, run_single
from repro.experiments.settings import get_setting
from repro.experiments.workloads import build_workload
from repro.nn.dtype import default_dtype, dtype_name, get_default_dtype, resolve_dtype, set_default_dtype
from repro.optim import build_optimizer
from repro.training.trainer import Trainer

TINY = dict(size_scale=0.12, epoch_scale=0.1)


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_context_manager_scopes_and_restores(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            with default_dtype("float64"):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_set_default_dtype(self):
        try:
            set_default_dtype(np.float32)
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype("float64")

    def test_resolve_dtype_spellings(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64
        assert resolve_dtype(None) == get_default_dtype()
        assert dtype_name(np.float32) == "float32"

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            resolve_dtype("float16")
        with pytest.raises(ValueError):
            nn.Tensor([1.0], dtype="int64")


class TestTensorDtypeCoercion:
    def test_leaf_construction_follows_default(self):
        with default_dtype("float32"):
            assert nn.Tensor([1.0, 2.0]).dtype == np.float32
            assert nn.Tensor(np.zeros(3)).dtype == np.float32
        assert nn.Tensor([1.0]).dtype == np.float64

    def test_explicit_dtype_wins(self):
        assert nn.Tensor([1.0], dtype="float32").dtype == np.float32

    def test_integer_data_preserved(self):
        with default_dtype("float32"):
            assert nn.Tensor(np.arange(3)).dtype == np.int64

    def test_constructors_accept_dtype(self):
        assert nn.Tensor.zeros(2, 2, dtype="float32").dtype == np.float32
        assert nn.Tensor.ones(2, dtype="float32").dtype == np.float32
        assert nn.Tensor.randn(2, rng=np.random.default_rng(0), dtype="float32").dtype == np.float32

    def test_randn_stream_identical_across_dtypes(self):
        a = nn.Tensor.randn(5, rng=np.random.default_rng(7), dtype="float64")
        b = nn.Tensor.randn(5, rng=np.random.default_rng(7), dtype="float32")
        np.testing.assert_allclose(a.data, b.data.astype(np.float64), rtol=1e-7)

    def test_astype_is_differentiable(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        y = x.astype("float32") * 3.0
        with default_dtype("float32"):
            z = y.sum()
        z.backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, [3.0, 3.0], rtol=1e-6)

    def test_grad_matches_tensor_dtype(self):
        with default_dtype("float32"):
            x = nn.Tensor([1.0, -2.0], requires_grad=True)
            (x.relu().sum()).backward()
        assert x.grad.dtype == np.float32


class TestModelStackDtype:
    def test_parameters_buffers_and_grads_are_float32_end_to_end(self):
        with default_dtype("float32"):
            workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.12)
            model = workload.model
            assert {p.dtype for p in model.parameters()} == {np.dtype(np.float32)}
            for module in model.modules():
                for buf in module._buffers.values():
                    assert buf.dtype == np.float32
            batch = next(iter(workload.train_loader))
            loss = workload.task.compute_loss(model, batch)
            assert loss.dtype == np.float32
            loss.backward()
            assert {p.grad.dtype for p in model.parameters() if p.grad is not None} == {
                np.dtype(np.float32)
            }

    def test_optimizer_state_matches_param_dtype(self):
        with default_dtype("float32"):
            model = nn.Linear(4, 3, rng=np.random.default_rng(0))
            opt = build_optimizer("adam", model.parameters(), lr=0.01)
            model(nn.Tensor(np.ones((2, 4)))).sum().backward()
            opt.step()
        for p in model.parameters():
            state = opt.state_for(p)
            assert state["exp_avg"].dtype == np.float32
            assert state["exp_avg_sq"].dtype == np.float32
            assert p.data.dtype == np.float32

    def test_trainer_dtype_option_scopes_fit(self):
        with default_dtype("float32"):
            workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.12)
        opt = build_optimizer("sgdm", workload.model.parameters(), lr=0.05)
        trainer = Trainer(
            model=workload.model,
            optimizer=opt,
            task=workload.task,
            train_loader=workload.train_loader,
            dtype="float32",
        )
        trainer.fit(2)
        assert {p.dtype for p in workload.model.parameters()} == {np.dtype(np.float32)}

    def test_init_streams_identical_across_dtypes(self):
        with default_dtype("float64"):
            m64 = nn.Linear(6, 5, rng=np.random.default_rng(3))
        with default_dtype("float32"):
            m32 = nn.Linear(6, 5, rng=np.random.default_rng(3))
        np.testing.assert_allclose(m64.weight.data, m32.weight.data.astype(np.float64), rtol=1e-6)


def tiny_config(**overrides) -> RunConfig:
    base = dict(
        setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25, **TINY
    )
    base.update(overrides)
    return RunConfig(**base)


class TestRunConfigDtype:
    def test_resolve_dtype_defaults_to_setting(self):
        assert tiny_config().resolve_dtype() == "float64"
        assert tiny_config(dtype="float32").resolve_dtype() == "float32"

    def test_fingerprint_keys_on_dtype(self):
        f64 = config_fingerprint(tiny_config())
        f32 = config_fingerprint(tiny_config(dtype="float32"))
        assert f64 != f32

    def test_fingerprint_resolves_default_spelling(self):
        # dtype=None and the setting default spelled out are the same cell
        implicit = config_fingerprint(tiny_config())
        explicit = config_fingerprint(tiny_config(dtype="float64"))
        assert implicit == explicit
        assert fingerprint_payload(tiny_config())["dtype"] == "float64"

    def test_run_single_float32_trains_and_records_dtype(self):
        record = run_single(tiny_config(dtype="float32"))
        assert record.extra["dtype"] == "float32"
        assert np.isfinite(record.metric)
        # the override must not leak into the ambient default
        assert get_default_dtype() == np.float64

    def test_float32_deterministic_and_distinct_cache_entries(self, tmp_path):
        from repro.execution import ExperimentEngine

        plan = [tiny_config(dtype="float32")]
        first = ExperimentEngine(cache=tmp_path).run(plan)
        again = ExperimentEngine(cache=tmp_path).run(plan)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in again]
        # a float64 run of the same cell is a different cache entry
        ExperimentEngine(cache=tmp_path).run([tiny_config()])
        assert len(list(tmp_path.glob("*.json"))) == 2
