"""Property-based tests (hypothesis) on schedule invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules import (
    CosineSchedule,
    DelayedLinearSchedule,
    ExponentialSchedule,
    LinearSchedule,
    OneCycleSchedule,
    REXSchedule,
    StepSchedule,
    build_schedule,
)
from repro.schedules.registry import available_schedules

totals = st.integers(min_value=2, max_value=500)
lrs = st.floats(min_value=1e-5, max_value=10.0, allow_nan=False, allow_infinity=False)

DECAYING = ["rex", "linear", "cosine", "exponential", "step"]


class TestDecaySchedules:
    @given(totals, lrs, st.sampled_from(DECAYING))
    @settings(max_examples=150, deadline=None)
    def test_monotone_non_increasing_and_bounded(self, total, lr, name):
        sched = build_registered(name, total, lr)
        seq = sched.sequence()
        assert len(seq) == total
        assert seq[0] == pytest.approx(lr)
        assert np.all(np.diff(seq) <= 1e-12 * max(lr, 1.0))
        assert np.all(seq >= -1e-15)
        assert np.all(seq <= lr * (1 + 1e-12))

    @given(totals, lrs)
    @settings(max_examples=100, deadline=None)
    def test_rex_lies_between_linear_and_delayed_linear(self, total, lr):
        """REX interpolates: linear <= REX <= delayed-linear(50%) before the delay point."""
        rex = REXSchedule(None, total_steps=total, base_lr=lr).sequence()
        linear = LinearSchedule(None, total_steps=total, base_lr=lr).sequence()
        assert np.all(rex >= linear - 1e-12 * max(lr, 1.0))

    @given(totals, lrs)
    @settings(max_examples=100, deadline=None)
    def test_rex_final_lr_close_to_zero(self, total, lr):
        sched = REXSchedule(None, total_steps=total, base_lr=lr)
        final = sched.lr_at(total - 1)
        # final step has progress (T-1)/T so the LR is small but non-negative
        assert 0.0 <= final <= lr * 2.0 / total + 1e-12

    @given(totals, lrs)
    @settings(max_examples=50, deadline=None)
    def test_cosine_halfway_is_half(self, total, lr):
        sched = CosineSchedule(None, total_steps=2 * total, base_lr=lr)
        assert sched.lr_at(total) == pytest.approx(lr / 2, rel=1e-6)

    @given(totals, lrs, st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=100, deadline=None)
    def test_delayed_linear_holds_base_lr_during_delay(self, total, lr, delay):
        sched = DelayedLinearSchedule(None, total_steps=total, delay_fraction=delay, base_lr=lr)
        seq = sched.sequence()
        held_steps = int(np.floor(delay * total))
        if held_steps > 0:
            np.testing.assert_allclose(seq[:held_steps], lr)


class TestStepSemantics:
    @given(totals, lrs)
    @settings(max_examples=100, deadline=None)
    def test_step_schedule_has_exactly_three_levels(self, total, lr):
        sched = StepSchedule(None, total_steps=total, base_lr=lr)
        levels = np.unique(np.round(sched.sequence() / lr, 10))
        assert len(levels) <= 3
        assert np.isin(1.0, levels)

    @given(totals, lrs)
    @settings(max_examples=50, deadline=None)
    def test_exponential_never_reaches_zero(self, total, lr):
        sched = ExponentialSchedule(None, total_steps=total, base_lr=lr)
        assert sched.lr_at(total - 1) > 0


class TestOneCycleProperties:
    @given(st.integers(min_value=4, max_value=400), lrs)
    @settings(max_examples=100, deadline=None)
    def test_onecycle_is_unimodal(self, total, lr):
        seq = OneCycleSchedule(None, total_steps=total, base_lr=lr).sequence()
        peak = int(np.argmax(seq))
        assert np.all(np.diff(seq[: peak + 1]) >= -1e-12 * max(lr, 1.0))
        assert np.all(np.diff(seq[peak:]) <= 1e-12 * max(lr, 1.0))

    @given(st.integers(min_value=4, max_value=400), lrs)
    @settings(max_examples=50, deadline=None)
    def test_onecycle_momentum_bounds(self, total, lr):
        sched = OneCycleSchedule(None, total_steps=total, base_lr=lr)
        momenta = np.array([sched.momentum_at(t) for t in range(total)])
        assert np.all(momenta >= 0.85 - 1e-12)
        assert np.all(momenta <= 0.95 + 1e-12)


class TestStepDriverProperties:
    @given(st.integers(min_value=1, max_value=100), st.sampled_from(DECAYING + ["onecycle", "none"]))
    @settings(max_examples=100, deadline=None)
    def test_step_always_returns_lr_from_sequence(self, total, name):
        sched = build_schedule(name, None, total_steps=total, base_lr=0.7)
        seq = sched.sequence()
        for t in range(total):
            assert sched.step() == pytest.approx(seq[t])


# ---------------------------------------------------------------------------
# registry-driven sweep: invariants every registered schedule must satisfy
# ---------------------------------------------------------------------------

#: every schedule the library registers, not a hand-maintained subset — a new
#: registry entry is automatically swept
REGISTERED = tuple(available_schedules())

#: schedules whose curve is a pure function of progress t/T; the paper relies
#: on this when it compares the same profile across budgets
PROGRESS_INVARIANT = ("rex", "linear", "cosine")

#: construction kwargs for registry entries without an all-defaults signature
SWEEP_KWARGS = {"delayed_linear": {"delay_fraction": 0.5}}


def build_registered(name, total, lr):
    return build_schedule(name, None, total_steps=total, base_lr=lr, **SWEEP_KWARGS.get(name, {}))


class TestRegistrySweep:
    @given(totals, lrs, st.sampled_from(REGISTERED))
    @settings(max_examples=200, deadline=None)
    def test_every_schedule_stays_within_zero_and_peak(self, total, lr, name):
        """All registered schedules peak at base_lr and never go negative."""
        sched = build_registered(name, total, lr)
        seq = sched.sequence()
        assert len(seq) == total
        tol = 1e-12 * max(lr, 1.0)
        assert np.all(seq >= -tol)
        assert np.all(seq <= lr + tol)

    @given(totals, lrs, st.sampled_from(REGISTERED))
    @settings(max_examples=150, deadline=None)
    def test_terminal_value_hit_at_exact_budget(self, total, lr, name):
        """Driving a schedule for its budget lands exactly on lr_at(T-1), and
        stepping past the budget clamps there instead of extrapolating."""
        sched = build_registered(name, total, lr)
        terminal = sched.lr_at(total - 1)
        for _ in range(total):
            last = sched.step()
        assert last == pytest.approx(terminal)
        assert sched.step() == pytest.approx(terminal)

    @given(
        totals,
        lrs,
        st.integers(min_value=2, max_value=7),
        st.sampled_from(PROGRESS_INVARIANT),
    )
    @settings(max_examples=150, deadline=None)
    def test_progress_invariant_schedules_rescale_with_budget(self, total, lr, scale, name):
        """REX/linear/cosine are functions of t/T: scaling the budget by k
        leaves the curve at corresponding steps unchanged."""
        small = build_schedule(name, None, total_steps=total, base_lr=lr)
        large = build_schedule(name, None, total_steps=total * scale, base_lr=lr)
        for t in range(total):
            assert large.lr_at(t * scale) == pytest.approx(small.lr_at(t), rel=1e-9, abs=1e-12)

    @given(totals, lrs, st.sampled_from(REGISTERED))
    @settings(max_examples=100, deadline=None)
    def test_sequence_is_pure(self, total, lr, name):
        """sequence() must not mutate driver state (lr_at is functional)."""
        sched = build_registered(name, total, lr)
        first = sched.sequence()
        np.testing.assert_array_equal(first, sched.sequence())
        assert sched.last_step == -1
