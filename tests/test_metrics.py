"""Tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training import metrics as M


class TestClassificationMetrics:
    def test_accuracy_and_error(self):
        preds = np.array([0, 1, 2, 2])
        targets = np.array([0, 1, 1, 2])
        assert M.accuracy(preds, targets) == pytest.approx(0.75)
        assert M.error_rate(preds, targets) == pytest.approx(25.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            M.accuracy(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            M.accuracy(np.array([1]), np.array([1, 2]))


class TestMatthewsAndF1:
    def test_matthews_perfect_and_inverse(self):
        y = np.array([0, 1, 0, 1, 1, 0])
        assert M.matthews_corrcoef(y, y) == pytest.approx(1.0)
        assert M.matthews_corrcoef(1 - y, y) == pytest.approx(-1.0)

    def test_matthews_degenerate_is_zero(self):
        assert M.matthews_corrcoef(np.ones(4), np.array([0, 1, 0, 1])) == 0.0

    def test_f1(self):
        preds = np.array([1, 1, 0, 0])
        targets = np.array([1, 0, 1, 0])
        # precision = 0.5, recall = 0.5 -> F1 = 0.5
        assert M.f1_score(preds, targets) == pytest.approx(0.5)
        assert M.f1_score(np.zeros(4), targets) == 0.0
        assert M.f1_score(targets, targets) == pytest.approx(1.0)


class TestCorrelations:
    def test_pearson_linear_relationship(self):
        x = np.linspace(0, 1, 20)
        assert M.pearson_corr(2 * x + 1, x) == pytest.approx(1.0)
        assert M.pearson_corr(-x, x) == pytest.approx(-1.0)
        assert M.pearson_corr(np.ones(5), x[:5]) == 0.0

    def test_spearman_monotone_nonlinear(self):
        x = np.linspace(0.1, 1, 20)
        y = x**3  # monotone but nonlinear
        assert M.spearman_corr(y, x) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 3.0, 4.0])
        value = M.spearman_corr(a, b)
        assert 0.8 < value <= 1.0

    def test_pearson_spearman_average(self):
        x = np.linspace(0, 1, 15)
        y = x.copy()
        assert M.pearson_spearman(y, x) == pytest.approx(1.0)


class TestGlueDispatch:
    def test_metric_dispatch_and_scaling(self):
        preds = np.array([0, 1, 1, 0])
        targets = np.array([0, 1, 0, 0])
        assert M.glue_metric("accuracy", preds, targets) == pytest.approx(75.0)
        assert M.glue_metric("f1", preds, targets) == pytest.approx(
            100.0 * M.f1_score(preds, targets)
        )
        assert M.glue_metric("matthews", targets, targets) == pytest.approx(100.0)
        x = np.linspace(0, 1, 10)
        assert M.glue_metric("pearson_spearman", x, x) == pytest.approx(100.0)
        with pytest.raises(KeyError):
            M.glue_metric("bleu", preds, targets)


class TestDetectionMetrics:
    def test_box_iou(self):
        box = np.array([0.5, 0.5, 0.2, 0.2])
        assert M.box_iou(box, box) == pytest.approx(1.0)
        disjoint = np.array([0.9, 0.9, 0.1, 0.1])
        assert M.box_iou(box, disjoint) == 0.0
        half = np.array([0.6, 0.5, 0.2, 0.2])  # shifted by half a width
        assert 0.0 < M.box_iou(box, half) < 1.0

    def _grid(self, n=4, g=4, c=3, seed=0):
        rng = np.random.default_rng(seed)
        targets = np.zeros((n, g, g, 5 + c))
        for i in range(n):
            gy, gx = rng.integers(0, g, size=2)
            targets[i, gy, gx, :5] = [0.5, 0.5, 0.3, 0.3, 1.0]
            targets[i, gy, gx, 5 + rng.integers(0, c)] = 1.0
        return targets

    def test_perfect_predictions_score_100(self):
        targets = self._grid()
        preds = targets.copy()
        preds[..., 4] = np.where(targets[..., 4] > 0.5, 20.0, -20.0)
        preds[..., 5:] *= 10
        assert M.detection_average_precision(preds, targets) == pytest.approx(100.0)

    def test_random_predictions_score_low(self):
        targets = self._grid()
        preds = np.random.default_rng(1).standard_normal(targets.shape)
        score = M.detection_average_precision(preds, targets)
        assert 0.0 <= score < 60.0

    def test_wrong_class_kills_matches(self):
        targets = self._grid()
        preds = targets.copy()
        preds[..., 4] = np.where(targets[..., 4] > 0.5, 20.0, -20.0)
        # rotate the one-hot class channels so every class is wrong
        preds[..., 5:] = np.roll(targets[..., 5:], shift=1, axis=-1) * 10
        assert M.detection_average_precision(preds, targets) == pytest.approx(0.0)

    def test_no_objects_returns_zero(self):
        targets = np.zeros((2, 4, 4, 8))
        preds = np.zeros_like(targets)
        assert M.detection_average_precision(preds, targets) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            M.detection_average_precision(np.zeros((1, 4, 4, 8)), np.zeros((2, 4, 4, 8)))
