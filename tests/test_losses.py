"""Tests for the loss functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import losses
from repro.nn.tensor import Tensor

from gradcheck import assert_grad_close, numerical_gradient


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        loss = losses.cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 3), -20.0)
        logits[np.arange(3), np.arange(3)] = 20.0
        loss = losses.cross_entropy(Tensor(logits), np.arange(3))
        assert float(loss.data) < 1e-8

    def test_gradient_numerical(self, rng):
        logits_data = rng.standard_normal((4, 3))
        targets = np.array([0, 2, 1, 2])
        logits = Tensor(logits_data, requires_grad=True)
        losses.cross_entropy(logits, targets).backward()

        def f(arr):
            return float(losses.cross_entropy(Tensor(arr), targets).data)

        assert_grad_close(logits.grad, numerical_gradient(f, logits_data.copy()))

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = np.full((2, 4), -10.0)
        logits[:, 0] = 10.0
        targets = np.array([0, 0])
        plain = float(losses.cross_entropy(Tensor(logits), targets).data)
        smoothed = float(losses.cross_entropy(Tensor(logits), targets, label_smoothing=0.1).data)
        assert smoothed > plain

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            losses.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2))
        with pytest.raises(ValueError):
            losses.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5))


class TestRegressionLosses:
    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        assert float(losses.mse_loss(pred, np.array([1.0, 2.0, 5.0])).data) == pytest.approx(4.0 / 3)

    def test_l1(self):
        pred = Tensor(np.array([1.0, -2.0]))
        assert float(losses.l1_loss(pred, np.array([0.0, 0.0])).data) == pytest.approx(1.5)

    def test_mse_gradient(self, rng):
        pred_data = rng.standard_normal(6)
        target = rng.standard_normal(6)
        pred = Tensor(pred_data, requires_grad=True)
        losses.mse_loss(pred, target).backward()
        np.testing.assert_allclose(pred.grad, 2 * (pred_data - target) / 6)


class TestBCE:
    def test_matches_reference(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = rng.integers(0, 2, size=(4, 3)).astype(float)
        loss = float(losses.binary_cross_entropy_with_logits(Tensor(logits), targets).data)
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_stable_for_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = losses.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(float(loss.data))
        assert float(loss.data) < 1e-6


class TestVAELoss:
    def test_perfect_reconstruction_leaves_only_kl(self, rng):
        target = rng.integers(0, 2, size=(3, 16)).astype(float)
        recon_logits = np.where(target > 0.5, 50.0, -50.0)
        mu = Tensor(np.zeros((3, 4)), requires_grad=True)
        logvar = Tensor(np.zeros((3, 4)), requires_grad=True)
        loss = losses.vae_loss(Tensor(recon_logits), target, mu, logvar)
        # With mu=0, logvar=0 the KL term is exactly 0 and reconstruction ~ 0.
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)

    def test_kl_increases_with_mu(self):
        target = np.zeros((2, 8))
        recon = Tensor(np.full((2, 8), -50.0))
        mu_small = Tensor(np.zeros((2, 3)))
        mu_large = Tensor(np.full((2, 3), 2.0))
        logvar = Tensor(np.zeros((2, 3)))
        small = float(losses.vae_loss(recon, target, mu_small, logvar).data)
        large = float(losses.vae_loss(recon, target, mu_large, logvar).data)
        assert large > small
        assert large - small == pytest.approx(0.5 * 3 * 4.0)  # 0.5 * sum(mu^2)

    def test_beta_scales_kl(self):
        target = np.zeros((1, 4))
        recon = Tensor(np.full((1, 4), -50.0))
        mu = Tensor(np.ones((1, 2)))
        logvar = Tensor(np.zeros((1, 2)))
        beta1 = float(losses.vae_loss(recon, target, mu, logvar, beta=1.0).data)
        beta4 = float(losses.vae_loss(recon, target, mu, logvar, beta=4.0).data)
        assert beta4 == pytest.approx(4 * beta1)


class TestDetectionLoss:
    def _targets(self, rng, n=2, g=3, c=3):
        targets = np.zeros((n, g, g, 5 + c))
        targets[0, 1, 1] = [0.5, 0.5, 0.3, 0.3, 1.0] + [0.0] * c
        targets[0, 1, 1, 5] = 1.0
        targets[1, 0, 2] = [0.2, 0.8, 0.4, 0.4, 1.0] + [0.0] * c
        targets[1, 0, 2, 6] = 1.0
        return targets

    def test_perfect_prediction_has_small_loss(self, rng):
        targets = self._targets(rng)
        preds = targets.copy()
        preds[..., 4] = np.where(targets[..., 4] > 0.5, 30.0, -30.0)
        preds[..., 5:] = np.where(targets[..., 5:] > 0.5, 30.0, -30.0)
        loss = losses.detection_loss(Tensor(preds), targets, num_classes=3)
        assert float(loss.data) < 1e-6

    def test_wrong_boxes_increase_loss(self, rng):
        targets = self._targets(rng)
        good = targets.copy()
        good[..., 4] = np.where(targets[..., 4] > 0.5, 30.0, -30.0)
        good[..., 5:] = np.where(targets[..., 5:] > 0.5, 30.0, -30.0)
        bad = good.copy()
        bad[..., 0:4] += 1.0
        loss_good = float(losses.detection_loss(Tensor(good), targets, num_classes=3).data)
        loss_bad = float(losses.detection_loss(Tensor(bad), targets, num_classes=3).data)
        assert loss_bad > loss_good

    def test_gradients_flow(self, rng):
        targets = self._targets(rng)
        preds = Tensor(rng.standard_normal(targets.shape), requires_grad=True)
        losses.detection_loss(preds, targets, num_classes=3).backward()
        assert preds.grad is not None
        assert np.isfinite(preds.grad).all()

    def test_shape_validation(self, rng):
        targets = self._targets(rng)
        with pytest.raises(ValueError):
            losses.detection_loss(Tensor(np.zeros((2, 3, 3))), targets, num_classes=3)
        with pytest.raises(ValueError):
            losses.detection_loss(Tensor(np.zeros((1, 3, 3, 8))), targets, num_classes=3)
