"""Tests for the execution subsystem: plan enumeration, run cache, engine."""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.execution import (
    ExecutionContext,
    ExperimentEngine,
    RunCache,
    config_fingerprint,
    plan_budget_sweep,
    plan_lr_grid,
    plan_setting_table,
    run_configs,
)
from repro.experiments import RunConfig, run_setting_table, select_best_record, tune_learning_rate
from repro.experiments.runner import run_single
from repro.utils.records import RunRecord, RunStore

TINY = dict(size_scale=0.12, epoch_scale=0.1)


def tiny_config(**overrides) -> RunConfig:
    base = dict(
        setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25, **TINY
    )
    base.update(overrides)
    return RunConfig(**base)


def make_record(**overrides) -> RunRecord:
    base = dict(
        setting="RN20-CIFAR10",
        optimizer="sgdm",
        schedule="rex",
        budget_fraction=0.25,
        learning_rate=0.1,
        seed=0,
        metric=10.0,
    )
    base.update(overrides)
    return RunRecord(**base)


def stores_equal(a: RunStore, b: RunStore) -> bool:
    return [r.to_dict() for r in a] == [r.to_dict() for r in b]


class TestFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint(tiny_config()) == config_fingerprint(tiny_config())

    def test_resolved_fields_hash_identically(self):
        # lr=None resolves to the setting default; spelling the default out
        # explicitly (and changing the setting's case) is the same cell.
        implicit = tiny_config(setting="rn20-cifar10", learning_rate=None)
        explicit = tiny_config(setting="RN20-CIFAR10", learning_rate=0.1)
        assert config_fingerprint(implicit) == config_fingerprint(explicit)

    def test_every_field_is_load_bearing(self):
        base = config_fingerprint(tiny_config())
        for change in (
            dict(schedule="linear"),
            dict(optimizer="adam"),
            dict(budget_fraction=0.5),
            dict(seed=1),
            dict(learning_rate=0.3),
            dict(size_scale=0.2),
            dict(epoch_scale=0.2),
            dict(schedule_kwargs={"delay_fraction": 0.5}),
            dict(dtype="float32"),
        ):
            assert config_fingerprint(tiny_config(**change)) != base, change

    def test_schedule_kwargs_order_is_canonical(self):
        a = tiny_config(schedule_kwargs={"a": 1, "b": 2})
        b = tiny_config(schedule_kwargs={"b": 2, "a": 1})
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_generic_dataclass_configs_supported(self):
        @dataclasses.dataclass(frozen=True)
        class Cell:
            task: str
            seed: int

        assert config_fingerprint(Cell("mrpc", 0)) == config_fingerprint(Cell("mrpc", 0))
        assert config_fingerprint(Cell("mrpc", 0)) != config_fingerprint(Cell("mrpc", 1))

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            config_fingerprint({"setting": "RN20-CIFAR10"})


class TestRunCache:
    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        config = tiny_config()
        record = make_record(extra={"total_steps": 4, "diverged": False})
        cache.put(config, record)
        assert cache.get(config) == record
        assert config in cache
        assert len(cache) == 1
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_miss_then_invalidation_on_changed_kwargs(self, tmp_path):
        cache = RunCache(tmp_path)
        config = tiny_config(schedule="delayed_linear", schedule_kwargs={"delay_fraction": 0.25})
        assert cache.get(config) is None
        cache.put(config, make_record(schedule="delayed_linear"))
        changed = tiny_config(schedule="delayed_linear", schedule_kwargs={"delay_fraction": 0.5})
        assert cache.get(changed) is None
        assert cache.stats.misses == 2

    def test_corrupt_entry_evicted_and_repaired(self, tmp_path):
        cache = RunCache(tmp_path)
        config = tiny_config()
        path = cache.put(config, make_record())
        path.write_text("garbage")
        assert cache.get(config) is None
        assert not path.exists()  # evicted, so the next put can repair it
        cache.put(config, make_record())
        assert cache.get(config) == make_record()

    def test_duplicate_put_is_skipped(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(tiny_config(), make_record())
        cache.put(tiny_config(), make_record())
        assert len(cache) == 1
        assert cache.stats.stores == 1 and cache.stats.skips == 1

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(tiny_config(), make_record())
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_clear_tolerates_concurrent_prune(self, tmp_path, monkeypatch):
        """An entry deleted between the glob and the unlink must not crash.

        Regression: the cache directory is shared between processes, and
        ``clear`` crashed with ``FileNotFoundError`` when another process
        pruned an entry it had just listed — ``get`` already tolerated the
        same race with ``missing_ok=True``.  The race is reproduced
        deterministically by pruning the first listed entry from inside the
        glob itself.
        """
        from pathlib import Path

        cache = RunCache(tmp_path)
        cache.put(tiny_config(seed=0), make_record(seed=0))
        cache.put(tiny_config(seed=1), make_record(seed=1))
        real_glob = Path.glob

        def racing_glob(self, pattern):
            paths = sorted(real_glob(self, pattern))
            if paths and self == cache.cache_dir:
                paths[0].unlink()  # the concurrent pruner wins the race
            return iter(paths)

        monkeypatch.setattr(Path, "glob", racing_glob)
        assert cache.clear() == 2  # both listed entries end up gone
        monkeypatch.undo()
        assert len(cache) == 0


class TestPlans:
    def test_budget_sweep_order_matches_legacy_loops(self):
        plan = plan_budget_sweep("RN20-CIFAR10", "rex", "sgdm", budgets=(0.05, 0.25), seeds=(0, 1))
        cells = [(c.budget_fraction, c.seed) for c in plan]
        assert cells == [(0.05, 0), (0.05, 1), (0.25, 0), (0.25, 1)]

    def test_setting_table_covers_cross_product(self):
        plan = plan_setting_table(
            "RN20-CIFAR10", schedules=("rex", "linear"), optimizers=("sgdm", "adam"), budgets=(0.25,)
        )
        assert len(plan) == 4
        assert [(c.optimizer, c.schedule) for c in plan] == [
            ("sgdm", "rex"),
            ("sgdm", "linear"),
            ("adam", "rex"),
            ("adam", "linear"),
        ]

    def test_lr_grid_plan_sorted_ascending(self):
        plan = plan_lr_grid(tiny_config(), candidates=[0.3, 0.03, 0.1])
        assert [c.learning_rate for c in plan] == [0.03, 0.1, 0.3]
        with pytest.raises(ValueError):
            plan_lr_grid(tiny_config(), candidates=[])


class TestEngine:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ExperimentEngine(max_workers=0)
        with pytest.raises(ValueError):
            ExperimentEngine(retries=-1)

    def test_serial_matches_direct_run_single(self):
        plan = plan_budget_sweep("RN20-CIFAR10", "rex", "sgdm", budgets=(0.25,), seeds=(0,), **TINY)
        direct = RunStore([run_single(c) for c in plan])
        engine = ExperimentEngine(max_workers=1)
        assert stores_equal(engine.run(plan), direct)
        assert engine.last_report.executed == 1
        assert engine.last_report.cache_hits == 0

    def test_parallel_identical_to_serial(self):
        """max_workers=2 must produce a record-for-record identical RunStore."""
        kwargs = dict(
            schedules=("rex", "linear"), optimizers=("sgdm",), budgets=(0.25,), **TINY
        )
        serial = run_setting_table("RN20-CIFAR10", **kwargs)
        parallel = run_setting_table(
            "RN20-CIFAR10", **kwargs, context=ExecutionContext(workers=2)
        )
        assert stores_equal(serial, parallel)

    def test_second_invocation_is_pure_cache(self, tmp_path, monkeypatch):
        """Same cache_dir twice: second table performs zero training runs."""
        kwargs = dict(schedules=("rex", "linear"), optimizers=("sgdm",), budgets=(0.25,), **TINY)
        first = run_setting_table(
            "RN20-CIFAR10", **kwargs, context=ExecutionContext(cache=tmp_path)
        )
        assert len(list(tmp_path.glob("*.json"))) == len(first)

        def bomb(config):
            raise AssertionError("training ran despite a warm cache")

        # The engine resolves its default run function at run() time, so
        # patching run_single proves no cell was retrained.
        monkeypatch.setattr("repro.experiments.runner.run_single", bomb)
        second = run_setting_table(
            "RN20-CIFAR10", **kwargs, context=ExecutionContext(cache=tmp_path)
        )
        assert stores_equal(first, second)

    def test_cached_equals_uncached(self, tmp_path):
        kwargs = dict(schedules=("rex",), optimizers=("sgdm",), budgets=(0.25,), **TINY)
        plain = run_setting_table("RN20-CIFAR10", **kwargs)
        context = ExecutionContext(cache=tmp_path)
        cached = run_setting_table("RN20-CIFAR10", **kwargs, context=context)
        reloaded = run_setting_table("RN20-CIFAR10", **kwargs, context=context)
        assert stores_equal(plain, cached)
        assert stores_equal(plain, reloaded)

    def test_transient_failure_retried_once(self):
        calls = {"n": 0}

        def flaky(config):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return make_record()

        engine = ExperimentEngine(run_fn=flaky)
        store = engine.run([tiny_config()])
        assert len(store) == 1
        assert calls["n"] == 2
        assert engine.last_report.retried == 1

    def test_persistent_failure_raises(self):
        def broken(config):
            raise RuntimeError("permanent")

        engine = ExperimentEngine(run_fn=broken)
        with pytest.raises(RuntimeError, match="permanent"):
            engine.run([tiny_config()])
        assert engine.last_report.failures

    def test_run_configs_convenience(self, tmp_path):
        plan = plan_budget_sweep("RN20-CIFAR10", "rex", "sgdm", budgets=(0.25,), seeds=(0,), **TINY)
        store = run_configs(plan, cache_dir=tmp_path)
        assert len(store) == 1
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_streams_into_existing_store(self):
        store = RunStore([make_record(schedule="linear")])
        engine = ExperimentEngine(run_fn=lambda c: make_record())
        out = engine.run([tiny_config()], store=store)
        assert out is store
        assert len(store) == 2


def _record_or_kill_worker(config):
    """Kill the hosting process when it is a pool worker; succeed in-process.

    Module-level so it pickles into ProcessPoolExecutor workers.  The parent
    pid is baked into the config, so the serial-fallback re-run (which executes
    in the parent) returns normally.
    """
    if os.getpid() != config.parent_pid:
        os._exit(1)
    return make_record(seed=config.index)


@dataclasses.dataclass(frozen=True)
class _KillCell:
    parent_pid: int
    index: int


class TestEngineFailureModes:
    def test_completed_cells_cached_before_a_later_failure(self, tmp_path):
        """A crash partway through a sweep must not discard finished cells."""

        def second_cell_fails(config):
            if config.seed == 1:
                raise RuntimeError("boom")
            return make_record(seed=config.seed)

        engine = ExperimentEngine(cache=tmp_path, retries=0, run_fn=second_cell_fails)
        with pytest.raises(RuntimeError):
            engine.run([tiny_config(seed=0), tiny_config(seed=1)])
        # cell 0 finished first and must already be persisted
        assert len(list(tmp_path.glob("*.json"))) == 1
        resumed = ExperimentEngine(cache=tmp_path, run_fn=lambda c: make_record(seed=c.seed)).run(
            [tiny_config(seed=0), tiny_config(seed=1)]
        )
        assert len(resumed) == 2
        assert [r.seed for r in resumed] == [0, 1]

    def test_broken_pool_falls_back_to_serial(self):
        """Workers dying hard (OOM-kill style) must not lose the sweep."""
        cells = [_KillCell(parent_pid=os.getpid(), index=i) for i in range(3)]
        engine = ExperimentEngine(max_workers=2, run_fn=_record_or_kill_worker)
        store = engine.run(cells)
        assert [r.seed for r in store] == [0, 1, 2]
        assert engine.last_report.retried >= 1


class TestSeedOverride:
    def test_explicit_seeds_pin_the_table(self):
        plan = plan_setting_table(
            "RN20-CIFAR10", schedules=("rex",), optimizers=("sgdm",), budgets=(0.25,), seeds=(0, 7)
        )
        assert [c.seed for c in plan] == [0, 7]

    def test_default_remains_seed_sequence(self):
        plan = plan_setting_table(
            "RN20-CIFAR10", schedules=("rex",), optimizers=("sgdm",), budgets=(0.25,), num_seeds=1
        )
        # the derived sequence is namespaced, not literally 0
        assert plan[0].seed != 0


class TestTieBreaking:
    def test_plain_tie_resolves_to_smaller_lr(self):
        records = [
            make_record(learning_rate=0.3, metric=10.0),
            make_record(learning_rate=0.1, metric=10.0),
        ]
        assert select_best_record(records).learning_rate == 0.1

    def test_higher_is_better_sentinel_tie(self):
        # Two diverged runs both carry the 0.0 sentinel: smaller lr wins.
        records = [
            make_record(
                learning_rate=0.9, metric=0.0, higher_is_better=True, extra={"diverged": True}
            ),
            make_record(
                learning_rate=0.3, metric=0.0, higher_is_better=True, extra={"diverged": True}
            ),
        ]
        assert select_best_record(records).learning_rate == 0.3

    def test_genuine_zero_beats_diverged_zero(self):
        # A real 0.0 score ties the divergence sentinel; the non-diverged run
        # must win even though its learning rate is larger.
        records = [
            make_record(
                learning_rate=0.1, metric=0.0, higher_is_better=True, extra={"diverged": True}
            ),
            make_record(
                learning_rate=0.3, metric=0.0, higher_is_better=True, extra={"diverged": False}
            ),
        ]
        best = select_best_record(records)
        assert best.learning_rate == 0.3
        assert not best.extra["diverged"]

    def test_lower_is_better_inf_sentinel_tie(self):
        records = [
            make_record(learning_rate=0.9, metric=float("inf"), extra={"diverged": True}),
            make_record(learning_rate=0.3, metric=float("inf"), extra={"diverged": True}),
        ]
        assert select_best_record(records).learning_rate == 0.3

    def test_nan_ranks_worst(self):
        records = [
            make_record(learning_rate=0.1, metric=float("nan")),
            make_record(learning_rate=0.3, metric=50.0),
        ]
        assert select_best_record(records).learning_rate == 0.3

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            select_best_record([])

    def test_tune_learning_rate_through_engine(self, tmp_path):
        config = tiny_config()
        context = ExecutionContext(cache=tmp_path)
        first = tune_learning_rate(config, candidates=[0.03, 0.1], context=context)
        again = tune_learning_rate(config, candidates=[0.03, 0.1], context=context)
        assert len(first.all_records) == 2
        assert first.best_lr == again.best_lr
        assert stores_equal(first.all_records, again.all_records)


class TestSeedBatchedEngine:
    """The batch_seeds engine path: grouping, cache splitting, seed-list reuse."""

    def _plan(self, seeds, budget=0.05):
        return plan_budget_sweep(
            "VAE-MNIST", "cosine", "adam", budgets=(budget,), seeds=seeds, **TINY
        )

    def test_batched_store_equals_serial(self, tmp_path):
        plan = self._plan((0, 1, 2))
        serial = ExperimentEngine().run(plan)
        engine = ExperimentEngine(batch_seeds=True)
        batched = engine.run(plan)
        assert stores_equal(serial, batched)
        assert engine.last_report.batched_cells == 1
        assert engine.last_report.batched_records == 3
        assert engine.last_report.executed == 3

    def test_batched_cell_caches_per_seed_records(self, tmp_path):
        """A 5-seed batched cell writes one cache entry per seed, individually."""
        cache = RunCache(tmp_path / "cache")
        plan = self._plan((0, 1, 2, 3, 4))
        ExperimentEngine(cache=cache, batch_seeds=True).run(plan)
        assert len(cache) == 5
        for config in plan:
            assert config in cache

    def test_seed_subset_reuses_batched_cache(self, tmp_path, monkeypatch):
        """A later --seeds 3 run reuses seeds 0-2 from a cached --seeds 5 run."""
        cache = RunCache(tmp_path / "cache")
        ExperimentEngine(cache=cache, batch_seeds=True).run(self._plan((0, 1, 2, 3, 4)))

        def bomb(config):
            raise AssertionError("a cached cell must not retrain")

        monkeypatch.setattr("repro.experiments.runner.run_single", bomb)
        monkeypatch.setattr("repro.experiments.batched.run_single", bomb)
        engine = ExperimentEngine(cache=cache, batch_seeds=True)
        engine.run(self._plan((0, 1, 2)))
        assert engine.last_report.cache_hits == 3
        assert engine.last_report.executed == 0
        # and the reverse: a superset run trains only the new seeds
        monkeypatch.undo()
        engine = ExperimentEngine(cache=cache, batch_seeds=True)
        engine.run(self._plan((0, 1, 2, 3, 4, 5, 6)))
        assert engine.last_report.cache_hits == 5
        assert engine.last_report.executed == 2
        assert engine.last_report.batched_cells == 1

    def test_cache_files_identical_to_serial(self, tmp_path):
        """Batched and serial caches are byte-identical file for file."""
        plan = self._plan((0, 1))
        serial_cache = RunCache(tmp_path / "serial")
        batched_cache = RunCache(tmp_path / "batched")
        ExperimentEngine(cache=serial_cache).run(plan)
        ExperimentEngine(cache=batched_cache, batch_seeds=True).run(plan)
        serial_files = sorted(p.name for p in (tmp_path / "serial").glob("*.json"))
        batched_files = sorted(p.name for p in (tmp_path / "batched").glob("*.json"))
        assert serial_files == batched_files and serial_files
        for name in serial_files:
            assert (tmp_path / "serial" / name).read_text() == (
                tmp_path / "batched" / name
            ).read_text()

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_divergence_fallback_is_not_counted_as_batched(self):
        """batched_cells reports real stacked execution, not fallen-back groups."""
        plan = plan_budget_sweep(
            "VAE-MNIST",
            "cosine",
            "sgdm",
            budgets=(1.0,),
            seeds=(0, 1),
            learning_rate=1e6,  # diverges -> SeedDivergence -> serial fallback
            size_scale=0.12,
            epoch_scale=0.5,
        )
        engine = ExperimentEngine(batch_seeds=True)
        store = engine.run(plan)
        assert engine.last_report.batched_cells == 0
        assert engine.last_report.batched_records == 0
        assert engine.last_report.executed == 2
        assert all(record.extra["diverged"] for record in store)

    def test_custom_run_fn_disables_grouping(self):
        """A non-default run_fn must see every cell: no silent batched bypass."""
        calls = []

        def fake_run(config):
            calls.append(config.seed)
            return make_record(seed=config.seed, budget_fraction=config.budget_fraction)

        plan = self._plan((0, 1, 2))
        engine = ExperimentEngine(run_fn=fake_run, batch_seeds=True)
        engine.run(plan)
        assert sorted(calls) == [0, 1, 2]
        assert engine.last_report.batched_cells == 0

    def test_feedback_schedules_are_unbatchable_by_class(self):
        """Batchability is judged by schedule behaviour, not by registry name."""
        from repro.experiments import is_batchable
        from repro.schedules.plateau import DecayOnPlateauSchedule
        from repro.schedules.registry import SCHEDULE_REGISTRY, register_schedule

        try:
            register_schedule("plateau2", DecayOnPlateauSchedule)
            assert not is_batchable(tiny_config(schedule="plateau2"))
            register_schedule("opaque", lambda *a, **k: None)
            assert not is_batchable(tiny_config(schedule="opaque"))
            assert not is_batchable(tiny_config(schedule="not-registered"))
        finally:
            SCHEDULE_REGISTRY.pop("plateau2", None)
            SCHEDULE_REGISTRY.pop("opaque", None)

    def test_plateau_cells_stay_serial(self):
        from repro.experiments import is_batchable

        assert not is_batchable(tiny_config(schedule="plateau"))
        assert is_batchable(tiny_config(schedule="rex"))
        plan = plan_budget_sweep(
            "VAE-MNIST", "plateau", "adam", budgets=(0.05,), seeds=(0, 1), **TINY
        )
        engine = ExperimentEngine(batch_seeds=True)
        store = engine.run(plan)
        assert engine.last_report.batched_cells == 0
        assert stores_equal(store, ExperimentEngine().run(plan))

    def test_mixed_plan_preserves_order(self):
        """Batched groups interleaved with serial cells keep plan order."""
        plan = (
            self._plan((0, 1))
            + plan_budget_sweep("VAE-MNIST", "plateau", "adam", budgets=(0.05,), seeds=(0,), **TINY)
            + self._plan((2, 3), budget=0.1)
        )
        engine = ExperimentEngine(batch_seeds=True)
        store = engine.run(plan)
        serial = ExperimentEngine().run(plan)
        assert stores_equal(store, serial)
        assert engine.last_report.batched_cells == 2

    @pytest.mark.skipif(os.environ.get("REPRO_SKIP_SLOW") == "1", reason="process pool")
    def test_parallel_batched_matches_serial(self, tmp_path):
        """Batched cells survive the process pool (pickling) unchanged."""
        plan = self._plan((0, 1, 2)) + self._plan((0, 1, 2), budget=0.1)
        serial = ExperimentEngine().run(plan)
        engine = ExperimentEngine(max_workers=2, batch_seeds=True)
        batched = engine.run(plan)
        assert stores_equal(serial, batched)
        assert engine.last_report.batched_cells == 2

    def test_run_setting_table_batch_seeds_kwarg(self):
        kwargs = dict(
            setting="VAE-MNIST",
            schedules=("cosine",),
            optimizers=("adam",),
            budgets=(0.05,),
            seeds=(0, 1),
            **TINY,
        )
        assert stores_equal(
            run_setting_table(**kwargs),
            run_setting_table(context=ExecutionContext(batch_seeds=True), **kwargs),
        )
