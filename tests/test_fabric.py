"""Tests for the distributed experiment fabric: work queue, remote/tiered caches.

Covers the queue lifecycle contract (lease, heartbeat, visibility-timeout
re-lease, bounded retry, dead-lettering), byte-identical re-execution after a
lease expiry, the HTTP cache server/client round trip, tiered
read-through/write-back, shard routing, and the queue executor backend of the
engine.
"""

from __future__ import annotations

import threading

import pytest

from repro.execution import (
    CacheServer,
    ExperimentEngine,
    HTTPRunCache,
    InMemoryRunCache,
    QueueWorker,
    RetryPolicy,
    RunCache,
    ShardedRunCache,
    TieredRunCache,
    WorkQueue,
    config_fingerprint,
)
from repro.experiments.runner import RunConfig, run_single
from repro.utils.records import RunRecord

TINY = dict(size_scale=0.12, epoch_scale=0.1)


def tiny_config(**overrides) -> RunConfig:
    base = dict(
        setting="RN20-CIFAR10", schedule="rex", optimizer="sgdm", budget_fraction=0.25, **TINY
    )
    base.update(overrides)
    return RunConfig(**base)


def make_record(**overrides) -> RunRecord:
    base = dict(
        setting="RN20-CIFAR10",
        optimizer="sgdm",
        schedule="rex",
        budget_fraction=0.25,
        learning_rate=0.1,
        seed=0,
        metric=10.0,
    )
    base.update(overrides)
    return RunRecord(**base)


class FakeClock:
    """Deterministic wall clock so lease expiry needs no real sleeping."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestWorkQueue:
    def test_submit_lease_complete_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        job_id = queue.submit(tiny_config())
        assert queue.state(job_id) == "pending"
        leased = queue.lease("w1")
        assert leased is not None and leased.id == job_id and leased.attempts == 1
        assert leased.config == tiny_config()
        assert queue.state(job_id) == "leased"
        assert queue.complete(job_id, "w1")
        assert queue.state(job_id) == "done"
        assert queue.counts()["done"] == 1

    def test_submit_is_single_flight_by_fingerprint(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        first = queue.submit(tiny_config())
        second = queue.submit(tiny_config())
        assert first == second and len(queue) == 1
        # a different cell is a different job
        assert queue.submit(tiny_config(seed=1)) != first
        assert len(queue) == 2

    def test_submit_resets_finished_jobs(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        job_id = queue.submit(tiny_config())
        queue.lease("w1")
        queue.complete(job_id, "w1")
        assert queue.state(job_id) == "done"
        # a fresh request is a fresh intent to run (e.g. cache cleared)
        assert queue.submit(tiny_config()) == job_id
        assert queue.state(job_id) == "pending"

    def test_lease_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        queue.submit(tiny_config())
        assert queue.lease("w1") is not None
        assert queue.lease("w2") is None

    def test_complete_guards_ownership(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        job_id = queue.submit(tiny_config())
        queue.lease("w1")
        assert not queue.complete(job_id, "imposter")
        assert queue.state(job_id) == "leased"

    def test_heartbeat_extends_and_expiry_requeues(self, tmp_path):
        clock = FakeClock()
        queue = WorkQueue(tmp_path / "q.sqlite", visibility_timeout=30.0, clock=clock)
        job_id = queue.submit(tiny_config(), max_attempts=3)
        queue.lease("w1")
        clock.advance(20.0)
        assert queue.heartbeat(job_id, "w1")  # renewed: deadline is now +30
        clock.advance(20.0)
        assert queue.requeue_expired() == 0  # still within the renewed lease
        clock.advance(31.0)
        assert queue.requeue_expired() == 1
        assert queue.state(job_id) == "pending"
        assert not queue.heartbeat(job_id, "w1")  # the old lease is gone

    def test_expiry_with_spent_attempts_dead_letters(self, tmp_path):
        clock = FakeClock()
        queue = WorkQueue(tmp_path / "q.sqlite", visibility_timeout=10.0, clock=clock)
        job_id = queue.submit(tiny_config(), max_attempts=1)
        queue.lease("w1")
        clock.advance(11.0)
        queue.requeue_expired()
        assert queue.state(job_id) == "dead"
        (letter,) = queue.dead_letters()
        assert letter["last_error"] == "lease expired"

    def test_fail_retries_then_dead_letters(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        job_id = queue.submit(tiny_config(), max_attempts=2)
        queue.lease("w1")
        assert queue.fail(job_id, "w1", "boom 1") == "pending"
        queue.lease("w2")
        assert queue.fail(job_id, "w2", "boom 2") == "dead"
        (letter,) = queue.dead_letters()
        # the dead letter keeps the whole attempt history, terminal cause last
        assert letter["last_error"] == "boom 1; boom 2" and letter["attempts"] == 2

    def test_persistence_across_instances(self, tmp_path):
        path = tmp_path / "q.sqlite"
        WorkQueue(path).submit(tiny_config())
        reopened = WorkQueue(path)
        assert len(reopened) == 1 and reopened.counts()["pending"] == 1


class TestQueueWorker:
    def test_worker_drains_queue_and_publishes_records(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        cache = RunCache(tmp_path / "cache")
        configs = [tiny_config(seed=seed) for seed in (0, 1)]
        for config in configs:
            queue.submit(config)
        worker = QueueWorker(queue, cache, run_fn=run_single, visibility_timeout=60.0)
        processed = worker.run_forever(idle_exit=0.01)
        assert processed == 2 and worker.completed == 2
        assert queue.counts()["done"] == 2
        for config in configs:
            assert cache.get(config) is not None

    def test_worker_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache"):
            QueueWorker(WorkQueue(tmp_path / "q.sqlite"), cache=None)

    def test_failing_cell_is_dead_lettered_not_poisonous(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        cache = InMemoryRunCache()
        queue.submit(tiny_config(), max_attempts=2)

        def explode(config):
            raise RuntimeError("training diverged hard")

        worker = QueueWorker(queue, cache, run_fn=explode, visibility_timeout=60.0)
        processed = worker.run_forever(idle_exit=0.01)
        assert processed == 2 and worker.failed == 2  # two attempts, then dead
        assert queue.counts()["dead"] == 1
        assert "diverged" in queue.dead_letters()[0]["last_error"]

    def test_lease_expiry_rerun_writes_identical_bytes(self, tmp_path):
        """A re-leased job re-trains and publishes byte-identical records."""
        clock = FakeClock()
        queue = WorkQueue(tmp_path / "q.sqlite", visibility_timeout=10.0, clock=clock)
        cache = RunCache(tmp_path / "cache")
        config = tiny_config()
        job_id = queue.submit(config, max_attempts=2)

        # worker 1 trains the cell and publishes, but crashes before complete()
        first = queue.lease("w1")
        record = run_single(first.config)
        cache.put(first.config, record)
        first_bytes = cache.read_blob(config_fingerprint(config))
        clock.advance(11.0)
        assert queue.requeue_expired() == 1

        # worker 2 re-leases and re-runs the whole job; determinism + the
        # cache's first-write-wins makes the double execution harmless
        second = queue.lease("w2")
        assert second is not None and second.attempts == 2
        rerun = run_single(second.config)
        assert rerun.to_dict() == record.to_dict()
        cache.put(second.config, rerun)
        queue.complete(job_id, "w2")
        assert cache.read_blob(config_fingerprint(config)) == first_bytes
        assert len(cache) == 1 and queue.state(job_id) == "done"


@pytest.fixture()
def cache_server(tmp_path):
    server = CacheServer(tmp_path / "remote-store").start()
    yield server
    server.stop()


class TestRemoteCache:
    def test_http_round_trip(self, cache_server):
        client = HTTPRunCache(cache_server.url)
        config, record = tiny_config(), make_record()
        assert client.ping()
        assert client.get(config) is None and config not in client
        client.put(config, record)
        assert client.get(config) == record
        assert config in client and len(client) == 1
        assert client.stats.hits == 1 and client.stats.misses == 1

    def test_served_bytes_identical_to_local_layout(self, cache_server, tmp_path):
        """A served store and a local directory are file-identical per entry."""
        client = HTTPRunCache(cache_server.url)
        local = RunCache(tmp_path / "local-store")
        config, record = tiny_config(), make_record()
        client.put(config, record)
        local.put(config, record)
        fingerprint = config_fingerprint(config)
        assert cache_server.store.read_blob(fingerprint) == local.read_blob(fingerprint)

    def test_unreachable_store_is_an_error_on_get(self):
        # An exhausted transport is an *error*, not a silent miss: the caller
        # still gets None (and trains locally), but the stats tell the truth.
        client = HTTPRunCache(
            "http://127.0.0.1:9", timeout=0.2, retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0)
        )
        assert client.get(tiny_config()) is None
        assert client.stats.errors == 1 and client.stats.misses == 0
        assert client.stats.retries == 1  # the policy did try again
        assert not client.ping()

    def test_unreachable_store_degrades_gracefully_on_put(self):
        """A down store must not abort the run that just finished training.

        Regression: ``put`` used to let the transport error propagate, so a
        write-through to an unreachable remote tier lost the whole run.  Now
        the failure is counted in ``CacheStats.errors`` (surfaced through
        ``EngineReport.cache_tiers``) and the caller carries on.
        """
        client = HTTPRunCache("http://127.0.0.1:9", timeout=0.2)
        client.put(tiny_config(), make_record())  # must not raise
        assert client.stats.errors == 1
        assert client.stats.stores == 0

    def test_malformed_put_rejected(self, cache_server):
        import urllib.error
        import urllib.request

        url = f"{cache_server.url}/records/{'0' * 64}"
        request = urllib.request.Request(url, data=b"not json", method="PUT")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400
        assert len(cache_server.store) == 0

    def test_clear(self, cache_server):
        client = HTTPRunCache(cache_server.url)
        client.put(tiny_config(), make_record())
        assert client.clear() == 1
        assert len(client) == 0


class TestTieredCache:
    def test_read_through_backfills_nearer_tiers(self, tmp_path):
        near, far = InMemoryRunCache(), RunCache(tmp_path / "far")
        tiered = TieredRunCache(near, far)
        config, record = tiny_config(), make_record()
        far.put(config, record)
        assert len(near) == 0
        assert tiered.get(config) == record  # hit at the far tier...
        assert len(near) == 1  # ...backfilled the near one
        assert near.get(config) == record
        assert tiered.stats.hits == 1

    def test_write_back_writes_through_all_tiers(self, tmp_path):
        near, far = InMemoryRunCache(), RunCache(tmp_path / "far")
        tiered = TieredRunCache(near, far)
        config, record = tiny_config(), make_record()
        tiered.put(config, record)
        assert near.get(config) == record and far.get(config) == record
        assert config in tiered and len(tiered) == 1

    def test_remote_tier_round_trip(self, cache_server, tmp_path):
        """local-in-front-of-remote: the canonical fleet topology."""
        tiered = TieredRunCache(tmp_path / "near", cache_server.url)
        config, record = tiny_config(), make_record()
        tiered.put(config, record)
        # a second, cold client sees the record through the remote tier and
        # ends up with a warmed local copy
        other = TieredRunCache(tmp_path / "other-near", cache_server.url)
        assert other.get(config) == record
        assert RunCache(tmp_path / "other-near").get(config) == record

    def test_miss_everywhere(self, tmp_path):
        tiered = TieredRunCache(InMemoryRunCache(), tmp_path / "far")
        assert tiered.get(tiny_config()) is None
        assert tiered.stats.misses == 1

    def test_put_survives_dead_remote_tier(self, tmp_path):
        """Write-through keeps the surviving local tiers when the remote is down.

        Regression: the composite ``put`` let the remote tier's transport
        error propagate, aborting the run *after* training finished and losing
        the record from every tier — including the perfectly healthy local
        one.
        """
        local_dir = tmp_path / "near"
        tiered = TieredRunCache(local_dir, HTTPRunCache("http://127.0.0.1:9", timeout=0.2))
        config, record = tiny_config(), make_record()
        tiered.put(config, record)  # must not raise
        # the local tier kept the record; the remote failure is on the books
        assert RunCache(local_dir).get(config) == record
        assert tiered.tiers[1].stats.errors == 1
        assert tiered.stats.stores == 1
        # degraded but functional: the composite still serves the record
        assert tiered.get(config) == record

    def test_needs_at_least_one_tier(self):
        with pytest.raises(ValueError):
            TieredRunCache()


class TestShardedCache:
    def test_routing_is_deterministic_and_disjoint(self, tmp_path):
        shards = [InMemoryRunCache() for _ in range(3)]
        sharded = ShardedRunCache(*shards)
        configs = [tiny_config(seed=seed) for seed in range(12)]
        for config in configs:
            sharded.put(config, make_record(seed=config.seed))
        assert len(sharded) == len(configs)
        assert sum(len(s) for s in shards) == len(configs)
        for config in configs:
            assert sharded.get(config).seed == config.seed
            owner = int(config_fingerprint(config)[:8], 16) % 3
            assert shards[owner].get(config) is not None

    def test_any_client_with_same_shard_list_agrees(self, tmp_path):
        dirs = [tmp_path / f"shard{i}" for i in range(2)]
        writer = ShardedRunCache(*dirs)
        reader = ShardedRunCache(*dirs)
        config, record = tiny_config(), make_record()
        writer.put(config, record)
        assert reader.get(config) == record and config in reader


class TestQueueExecutor:
    def test_inline_queue_backend_matches_serial(self, tmp_path):
        configs = [tiny_config(seed=seed) for seed in (0, 1)]
        serial = ExperimentEngine().run(configs)
        engine = ExperimentEngine(
            cache=tmp_path / "cache", executor="queue", queue=tmp_path / "q.sqlite"
        )
        distributed = engine.run(configs)
        assert [r.to_dict() for r in distributed] == [r.to_dict() for r in serial]
        assert engine.last_report.executor == "queue"
        assert engine.last_report.executed == 2

    def test_external_worker_backend(self, tmp_path):
        """queue_inline=False: training happens only in the worker thread."""
        queue = WorkQueue(tmp_path / "q.sqlite")
        cache = RunCache(tmp_path / "cache")
        engine = ExperimentEngine(
            cache=cache, executor="queue", queue=queue, queue_inline=False, poll_interval=0.01
        )
        worker = QueueWorker(queue, cache, run_fn=run_single, visibility_timeout=60.0)
        thread = threading.Thread(target=worker.run_forever, kwargs={"idle_exit": 1.0})
        thread.start()
        try:
            configs = [tiny_config(seed=seed) for seed in (0, 1)]
            store = engine.run(configs)
        finally:
            thread.join()
        assert len(store) == 2
        report = engine.last_report
        assert report.remote == 2 and report.executed == 0
        assert worker.completed == 2
        assert [r.to_dict() for r in store] == [
            r.to_dict() for r in ExperimentEngine().run(configs)
        ]

    def test_queue_executor_requires_queue_and_cache(self, tmp_path):
        with pytest.raises(ValueError, match="queue"):
            ExperimentEngine(cache=tmp_path, executor="queue")
        with pytest.raises(ValueError, match="cache"):
            ExperimentEngine(executor="queue", queue=tmp_path / "q.sqlite")

    def test_dead_letter_propagates_as_failure(self, tmp_path):
        def explode(config):
            raise RuntimeError("bad cell")

        engine = ExperimentEngine(
            cache=tmp_path / "cache",
            executor="queue",
            queue=tmp_path / "q.sqlite",
            retries=0,
            run_fn=explode,
        )
        with pytest.raises(RuntimeError):
            engine.run([tiny_config()])
        assert engine.last_report.failures

    def test_report_carries_cache_tier_deltas(self, tmp_path):
        near, far = InMemoryRunCache(), RunCache(tmp_path / "far")
        engine = ExperimentEngine(cache=TieredRunCache(near, far))
        config = tiny_config()
        engine.run([config])
        first = engine.last_report
        assert first.executor == "serial"
        assert first.cache_tiers["tiered"]["misses"] == 1
        assert first.cache_tiers["memory"]["stores"] == 1
        assert first.cache_tiers["local"]["stores"] == 1
        engine.run([config])
        second = engine.last_report
        assert second.executor == "cache"  # nothing executed at all
        assert second.cache_tiers["tiered"]["hits"] == 1


class TestSingleFlight:
    def test_claim_partitions_keys(self):
        from repro.execution import SingleFlight

        flight = SingleFlight()
        mine, theirs = flight.claim(["a", "b"])
        assert mine == ["a", "b"] and not theirs
        mine2, theirs2 = flight.claim(["b", "c"])
        assert mine2 == ["c"] and set(theirs2) == {"b"}
        assert flight.in_flight() == 3

    def test_release_wakes_waiters(self):
        from repro.execution import SingleFlight

        flight = SingleFlight()
        flight.claim(["a"])
        _, theirs = flight.claim(["a"])
        woke = []
        waiter = threading.Thread(target=lambda: woke.append(flight.wait(theirs, timeout=5.0)))
        waiter.start()
        flight.release(["a"])
        waiter.join(timeout=5.0)
        assert woke == [True] and flight.in_flight() == 0

    def test_wait_timeout_is_a_total_deadline(self):
        """Waiting on N stalled holders must block ~timeout, not N x timeout.

        Regression: ``wait`` used to apply ``timeout`` per event, so a serve
        request waiting on a wedged holder's four fingerprints blocked four
        times longer than its configured deadline.
        """
        import time

        from repro.execution import SingleFlight

        flight = SingleFlight()
        keys = ["k1", "k2", "k3", "k4"]
        flight.claim(keys)  # the stalled holder: claims and never releases
        _, theirs = flight.claim(keys)
        assert set(theirs) == set(keys)
        start = time.monotonic()
        ok = flight.wait(theirs, timeout=0.2)
        elapsed = time.monotonic() - start
        assert ok is False
        # per-event semantics would block >= 0.8s here; a total deadline with
        # generous scheduling slack stays well under half that
        assert elapsed < 0.6, f"wait blocked {elapsed:.2f}s for a 0.2s deadline"

    def test_wait_partial_release_still_respects_deadline(self):
        """A holder releasing some (not all) keys must not restart the clock."""
        import time

        from repro.execution import SingleFlight

        flight = SingleFlight()
        flight.claim(["a", "b", "c"])
        _, theirs = flight.claim(["a", "b", "c"])
        flight.release(["a"])  # one event already set; two still held
        start = time.monotonic()
        ok = flight.wait(theirs, timeout=0.2)
        elapsed = time.monotonic() - start
        assert ok is False and elapsed < 0.6


class _ExplodingCache(InMemoryRunCache):
    """A cache whose publish path is down (e.g. remote store unreachable)."""

    def put(self, config, record):  # noqa: D102 - test double
        raise OSError("cache server unreachable")


class TestFabricRegressions:
    """Failing-first regression tests for the PR 6 deadline/error-report bugs."""

    def test_expired_lease_error_appends_to_prior_failure(self, tmp_path):
        """Dead-lettering on lease expiry must report the expiry, not only a
        stale earlier error.

        Regression: ``requeue_expired`` used ``COALESCE(last_error, ...)``, so
        a job that failed once with a real error and then dead-lettered on a
        lease expiry reported the old error as its terminal cause.
        """
        clock = FakeClock()
        queue = WorkQueue(tmp_path / "q.sqlite", visibility_timeout=10.0, clock=clock)
        job_id = queue.submit(tiny_config(), max_attempts=2)
        queue.lease("w1")
        assert queue.fail(job_id, "w1", "boom 1") == "pending"
        queue.lease("w2")  # second (final) attempt wedges and never heartbeats
        clock.advance(11.0)
        assert queue.requeue_expired() == 1
        assert queue.state(job_id) == "dead"
        (letter,) = queue.dead_letters()
        assert "lease expired" in letter["last_error"]
        assert "boom 1" in letter["last_error"]  # attempt history stays honest
        assert letter["attempts"] == 2

    def test_worker_survives_cache_publish_failure(self, tmp_path):
        """A dead cache server fails the *job* (with retries), not the worker.

        Regression: ``run_once`` let ``cache.put`` exceptions propagate out of
        the loop without ``fail()``, crashing the worker and leaving the lease
        to dangle until the visibility timeout.
        """
        queue = WorkQueue(tmp_path / "q.sqlite")
        cache = _ExplodingCache()
        job_id = queue.submit(tiny_config(), max_attempts=2)
        worker = QueueWorker(queue, cache, run_fn=run_single, visibility_timeout=60.0)
        processed = worker.run_forever(idle_exit=0.01)  # must not raise
        assert processed == 2 and worker.failed == 2 and worker.completed == 0
        assert queue.state(job_id) == "dead"
        (letter,) = queue.dead_letters()
        assert "unreachable" in letter["last_error"]

    def test_http_5xx_counts_as_error_not_miss(self):
        """A broken cache server is not a cold cache.

        Regression: ``HTTPRunCache.get`` counted every HTTP error status as a
        miss, so a fleet pointed at a 500-ing store silently retrained
        everything while the stats claimed the cache was simply empty.
        """
        import http.server

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                self.send_error(500, "backend exploded")

            def log_message(self, *args):  # keep test output quiet
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = HTTPRunCache(f"http://127.0.0.1:{server.server_address[1]}")
            assert client.get(tiny_config()) is None  # caller can still train
            assert client.stats.errors == 1
            assert client.stats.misses == 0
            assert "errors" in client.stats.as_dict()
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()

    def test_http_404_still_counts_as_miss(self, cache_server):
        client = HTTPRunCache(cache_server.url)
        assert client.get(tiny_config()) is None
        assert client.stats.misses == 1 and client.stats.errors == 0

    def test_engine_report_surfaces_cache_errors(self, tmp_path):
        """The per-tier report carries the new ``errors`` counter."""
        near = InMemoryRunCache()
        engine = ExperimentEngine(cache=near)
        engine.run([tiny_config()])
        tiers = engine.last_report.cache_tiers
        assert tiers["memory"]["errors"] == 0
        assert engine.last_report.cache_errors == 0

    def test_len_failure_counts_as_error_not_empty(self):
        """A failed ``/stats`` probe is a broken backend, not an empty store.

        Regression: ``__len__`` silently returned 0 on server/transport
        errors, so a cache-server outage rendered as "cache: 0 records" in
        reports — indistinguishable from a genuinely cold cache.
        """
        client = HTTPRunCache("http://127.0.0.1:9", timeout=0.2)
        assert len(client) == 0  # the len() contract still needs an int
        assert client.stats.errors == 1
        assert "errors" in client.stats.as_dict()

    def test_run_completes_with_remote_cache_down(self):
        """Training degrades to uncached execution when the store is dead.

        End-to-end shape of the two put/get fixes: the engine pointed at an
        unreachable cache server still trains and returns records, with the
        put failures surfaced as tier errors in the report instead of an
        aborted run.
        """
        client = HTTPRunCache("http://127.0.0.1:9", timeout=0.2)
        engine = ExperimentEngine(cache=client)
        store = engine.run([tiny_config()])
        assert len(store) == 1
        report = engine.last_report
        assert report.executed == 1
        assert report.cache_errors >= 1  # the failed publish is on the books
        assert report.cache_tiers["remote"]["errors"] >= 1

    def test_worker_fails_job_when_publish_is_silently_dropped(self, tmp_path):
        """Publish-before-complete survives the non-raising remote put.

        With transport errors counted instead of raised, a worker whose store
        is down would otherwise complete the lease with the record published
        nowhere; the membership probe after the put must fail the job so it
        stays under its retry budget instead.
        """
        queue = WorkQueue(tmp_path / "q.sqlite")
        cache = HTTPRunCache("http://127.0.0.1:9", timeout=0.2)
        job_id = queue.submit(tiny_config(), max_attempts=1)
        worker = QueueWorker(queue, cache, run_fn=run_single, visibility_timeout=60.0)
        processed = worker.run_forever(idle_exit=0.01)
        assert processed == 1 and worker.completed == 0 and worker.failed == 1
        assert queue.state(job_id) == "dead"
        (letter,) = queue.dead_letters()
        assert "not visible" in letter["last_error"]


class _FlakyOnceHTTPRunCache(HTTPRunCache):
    """A client whose transport fails the first N opens, then works."""

    def __init__(self, *args, failures: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._failures_left = failures

    def _open(self, request, *, op, key):
        if self._failures_left > 0:
            self._failures_left -= 1
            raise OSError("connection reset by peer")
        return super()._open(request, op=op, key=key)


class TestRetryRegressions:
    """Failing-first regressions for the unified retry/backoff policy."""

    def test_http_get_retries_transient_failure_then_hits(self, cache_server):
        """One transport blip must not turn a warm cache into a retrain.

        Regression: ``HTTPRunCache`` made exactly one attempt per request, so
        a single connection reset on ``get`` read as a miss/error and the
        caller retrained a cell the store already had.
        """
        HTTPRunCache(cache_server.url).put(tiny_config(), make_record())
        client = _FlakyOnceHTTPRunCache(
            cache_server.url, retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0)
        )
        assert client.get(tiny_config()) == make_record()
        assert client.stats.hits == 1 and client.stats.errors == 0
        assert client.stats.retries == 1

    def test_http_put_retries_transient_failure_then_stores(self, cache_server):
        client = _FlakyOnceHTTPRunCache(
            cache_server.url, retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0)
        )
        client.put(tiny_config(), make_record())
        assert client.stats.stores == 1 and client.stats.errors == 0
        assert client.stats.retries == 1
        assert HTTPRunCache(cache_server.url).get(tiny_config()) == make_record()

    def test_http_4xx_is_not_retried(self, cache_server):
        """Client errors are permanent: burning the retry budget on a 404
        would triple every cold-cache probe's latency for nothing."""
        client = HTTPRunCache(
            cache_server.url, retry_policy=RetryPolicy(max_attempts=5, base_delay=0.0)
        )
        assert client.get(tiny_config()) is None
        assert client.stats.misses == 1 and client.stats.retries == 0

    def test_heartbeat_thread_survives_transient_errors(self, tmp_path):
        """A heartbeat hiccup must not silently kill the renewal thread.

        Regression: the heartbeat thread died on the first exception from
        ``queue.heartbeat`` (e.g. sqlite ``busy`` under contention); the
        lease then expired mid-train and the job double-ran.  Renewals now
        run under the worker's retry policy, and even an exhausted budget
        only skips one interval.
        """
        queue = WorkQueue(tmp_path / "q.sqlite", visibility_timeout=5.0)
        queue.submit(tiny_config())
        worker = QueueWorker(
            queue,
            InMemoryRunCache(),
            visibility_timeout=5.0,
            heartbeat_interval=0.02,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        job = queue.lease(worker.owner)
        renewals = []
        real_heartbeat = queue.heartbeat
        calls = [0]

        def flaky_heartbeat(job_id, owner):
            calls[0] += 1
            if calls[0] in (1, 2, 3):  # calls 1+2: one retried renewal;
                raise OSError("database is locked")  # call 3: budget exhausted
            renewals.append(calls[0])
            return real_heartbeat(job_id, owner)

        queue.heartbeat = flaky_heartbeat
        stop = threading.Event()
        beater = threading.Thread(target=worker._beat, args=(job, stop), daemon=True)
        beater.start()
        for _ in range(500):
            if len(renewals) >= 2:
                break
            threading.Event().wait(0.01)
        stop.set()
        beater.join(timeout=5.0)
        assert not beater.is_alive()
        assert len(renewals) >= 2  # the thread outlived both failure shapes
        assert worker.heartbeat_retries >= 1  # renewal 1 used the budget
        assert worker.heartbeat_failures >= 1  # renewal 2 exhausted it and logged


class TestDeadLetterLifecycle:
    """The operator's dead-letter workflow: inspect, requeue exactly once, re-try."""

    def test_requeue_dead_returns_jobs_to_pending_exactly_once(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        job_id = queue.submit(tiny_config(), max_attempts=1)
        queue.lease("w1")
        assert queue.fail(job_id, "w1", "boom 1") == "dead"
        assert queue.requeue_dead() == 1
        assert queue.state(job_id) == "pending"
        # exactly once: nothing dead is left to move
        assert queue.requeue_dead() == 0
        assert queue.state(job_id) == "pending"

    def test_requeue_dead_resets_attempts_but_preserves_error_chain(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        job_id = queue.submit(tiny_config(), max_attempts=2)
        queue.lease("w1")
        queue.fail(job_id, "w1", "boom 1")
        queue.lease("w1")
        assert queue.fail(job_id, "w1", "boom 2") == "dead"
        assert queue.requeue_dead() == 1
        # a fresh attempt budget: the job can fail max_attempts more times
        job = queue.lease("w2")
        assert job.attempts == 1
        assert queue.fail(job_id, "w2", "boom 3") == "pending"
        queue.lease("w2")
        assert queue.fail(job_id, "w2", "boom 4") == "dead"
        (letter,) = queue.dead_letters()
        # the full failure history across the requeue, oldest first
        assert letter["last_error"] == "boom 1; boom 2; boom 3; boom 4"

    def test_requeued_job_completes_normally(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.sqlite")
        cache = InMemoryRunCache()
        job_id = queue.submit(tiny_config(), max_attempts=1)
        queue.lease("w1")
        queue.fail(job_id, "w1", "transient infra outage")
        assert queue.state(job_id) == "dead"
        queue.requeue_dead()
        worker = QueueWorker(queue, cache, run_fn=run_single, visibility_timeout=60.0)
        assert worker.run_forever(idle_exit=0.01) == 1
        assert queue.state(job_id) == "done"
        assert cache.get(tiny_config()) is not None
