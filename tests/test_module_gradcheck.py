"""Numerical gradchecks for every module family in the zoo, in both dtypes.

The satellite op-level gradient tests live in ``test_tensor.py`` /
``test_functional.py``; this file closes the gap at the *module* level —
attention, convolution, pooling and normalisation — and parameterises each
check over float32 and float64 (float32 with loosened tolerances, see
``gradcheck.tolerances_for``).
"""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import module_gradcheck
from repro import nn

DTYPES = ("float64", "float32")


@pytest.mark.parametrize("dtype", DTYPES)
class TestLinearFamily:
    def test_linear(self, dtype):
        module_gradcheck(lambda rng: nn.Linear(5, 4, rng=rng), (3, 5), dtype=dtype)

    def test_embedding_path_via_transformer_layer(self, dtype):
        # Embedding itself takes integer indices (no input gradient); its
        # weight gradient is covered through the attention stack below.
        module_gradcheck(
            lambda rng: nn.TransformerEncoderLayer(8, num_heads=2, ffn_dim=12, rng=rng),
            (2, 3, 8),
            dtype=dtype,
        )


@pytest.mark.parametrize("dtype", DTYPES)
class TestAttention:
    def test_multi_head_self_attention(self, dtype):
        module_gradcheck(
            lambda rng: nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng), (2, 3, 8), dtype=dtype
        )

    def test_attention_with_padding_mask(self, dtype):
        mask = np.array([[1, 1, 0], [1, 1, 1]])
        module_gradcheck(
            lambda rng: nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng),
            (2, 3, 8),
            dtype=dtype,
            forward=lambda m, x: m(x, attention_mask=mask),
        )


@pytest.mark.parametrize("dtype", DTYPES)
class TestConv:
    def test_conv2d(self, dtype):
        module_gradcheck(
            lambda rng: nn.Conv2d(2, 3, kernel_size=3, padding=1, rng=rng), (2, 2, 4, 4), dtype=dtype
        )

    def test_conv2d_strided_no_bias(self, dtype):
        module_gradcheck(
            lambda rng: nn.Conv2d(2, 2, kernel_size=2, stride=2, bias=False, rng=rng),
            (2, 2, 4, 4),
            dtype=dtype,
        )


@pytest.mark.parametrize("dtype", DTYPES)
class TestPooling:
    def test_max_pool(self, dtype):
        module_gradcheck(lambda rng: nn.MaxPool2d(2), (2, 2, 4, 4), dtype=dtype)

    def test_avg_pool(self, dtype):
        module_gradcheck(lambda rng: nn.AvgPool2d(2), (2, 2, 4, 4), dtype=dtype)

    def test_global_avg_pool(self, dtype):
        module_gradcheck(lambda rng: nn.GlobalAvgPool2d(), (2, 3, 4, 4), dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
class TestNorm:
    def test_batchnorm1d_train(self, dtype):
        module_gradcheck(lambda rng: nn.BatchNorm1d(5), (6, 5), dtype=dtype)

    def test_batchnorm1d_eval_uses_running_stats(self, dtype):
        module_gradcheck(
            lambda rng: nn.BatchNorm1d(5), (6, 5), dtype=dtype, eval_mode=True, warmup_steps=2
        )

    def test_batchnorm2d_train(self, dtype):
        module_gradcheck(lambda rng: nn.BatchNorm2d(3), (2, 3, 3, 3), dtype=dtype)

    def test_batchnorm2d_eval_uses_running_stats(self, dtype):
        module_gradcheck(
            lambda rng: nn.BatchNorm2d(3), (2, 3, 3, 3), dtype=dtype, eval_mode=True, warmup_steps=2
        )

    def test_layernorm(self, dtype):
        module_gradcheck(lambda rng: nn.LayerNorm(6), (4, 6), dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
class TestActivationsThroughModules:
    def test_softmax_module(self, dtype):
        module_gradcheck(lambda rng: nn.Softmax(axis=-1), (3, 5), dtype=dtype)

    def test_gelu_module(self, dtype):
        module_gradcheck(lambda rng: nn.GELU(), (3, 5), dtype=dtype)
