"""Numerical gradchecks for every module family in the zoo, across dtypes.

The satellite op-level gradient tests live in ``test_tensor.py`` /
``test_functional.py``; this file closes the gap at the *module* level —
attention, convolution, pooling and normalisation — and parameterises each
check over float64, float32 and the emulated low-precision dtypes
(bfloat16/float16 compute in float32 but round every stored tensor to
their grid, so they get progressively looser tolerances — see
``gradcheck.tolerances_for``).  The numeric reference is always float64.
"""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import module_gradcheck
from repro import nn

DTYPES = ("float64", "float32", "bfloat16", "float16")


@pytest.mark.parametrize("dtype", DTYPES)
class TestLinearFamily:
    def test_linear(self, dtype):
        module_gradcheck(lambda rng: nn.Linear(5, 4, rng=rng), (3, 5), dtype=dtype)

    def test_embedding_path_via_transformer_layer(self, dtype):
        # Embedding itself takes integer indices (no input gradient); its
        # weight gradient is covered through the attention stack below.
        module_gradcheck(
            lambda rng: nn.TransformerEncoderLayer(8, num_heads=2, ffn_dim=12, rng=rng),
            (2, 3, 8),
            dtype=dtype,
        )


@pytest.mark.parametrize("dtype", DTYPES)
class TestAttention:
    def test_multi_head_self_attention(self, dtype):
        module_gradcheck(
            lambda rng: nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng), (2, 3, 8), dtype=dtype
        )

    def test_attention_with_padding_mask(self, dtype):
        mask = np.array([[1, 1, 0], [1, 1, 1]])
        module_gradcheck(
            lambda rng: nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng),
            (2, 3, 8),
            dtype=dtype,
            forward=lambda m, x: m(x, attention_mask=mask),
        )


@pytest.mark.parametrize("dtype", DTYPES)
class TestConv:
    def test_conv2d(self, dtype):
        module_gradcheck(
            lambda rng: nn.Conv2d(2, 3, kernel_size=3, padding=1, rng=rng), (2, 2, 4, 4), dtype=dtype
        )

    def test_conv2d_strided_no_bias(self, dtype):
        module_gradcheck(
            lambda rng: nn.Conv2d(2, 2, kernel_size=2, stride=2, bias=False, rng=rng),
            (2, 2, 4, 4),
            dtype=dtype,
        )


@pytest.mark.parametrize("dtype", DTYPES)
class TestPooling:
    def test_max_pool(self, dtype):
        module_gradcheck(lambda rng: nn.MaxPool2d(2), (2, 2, 4, 4), dtype=dtype)

    def test_avg_pool(self, dtype):
        module_gradcheck(lambda rng: nn.AvgPool2d(2), (2, 2, 4, 4), dtype=dtype)

    def test_global_avg_pool(self, dtype):
        module_gradcheck(lambda rng: nn.GlobalAvgPool2d(), (2, 3, 4, 4), dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
class TestNorm:
    def test_batchnorm1d_train(self, dtype):
        module_gradcheck(lambda rng: nn.BatchNorm1d(5), (6, 5), dtype=dtype)

    def test_batchnorm1d_eval_uses_running_stats(self, dtype):
        module_gradcheck(
            lambda rng: nn.BatchNorm1d(5), (6, 5), dtype=dtype, eval_mode=True, warmup_steps=2
        )

    def test_batchnorm2d_train(self, dtype):
        module_gradcheck(lambda rng: nn.BatchNorm2d(3), (2, 3, 3, 3), dtype=dtype)

    def test_batchnorm2d_eval_uses_running_stats(self, dtype):
        module_gradcheck(
            lambda rng: nn.BatchNorm2d(3), (2, 3, 3, 3), dtype=dtype, eval_mode=True, warmup_steps=2
        )

    def test_layernorm(self, dtype):
        module_gradcheck(lambda rng: nn.LayerNorm(6), (4, 6), dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
class TestActivationsThroughModules:
    def test_softmax_module(self, dtype):
        module_gradcheck(lambda rng: nn.Softmax(axis=-1), (3, 5), dtype=dtype)

    def test_gelu_module(self, dtype):
        module_gradcheck(lambda rng: nn.GELU(), (3, 5), dtype=dtype)


# ---------------------------------------------------------------------------
# seed-batched property tests: axis independence and batched-vs-loop gradients
# ---------------------------------------------------------------------------

def _stacked_module_and_inputs(build_fn, input_shape, num_seeds=3, seed=0):
    """S stacked replicas plus matching per-seed inputs (stacked and separate)."""
    replicas = [build_fn(np.random.default_rng(seed + s)) for s in range(num_seeds)]
    stacked = nn.stack_modules([build_fn(np.random.default_rng(seed + s)) for s in range(num_seeds)])
    rng = np.random.default_rng(seed + 1000)
    per_seed = [rng.standard_normal(input_shape) for _ in range(num_seeds)]
    return replicas, stacked, per_seed


def _batched_forward_backward(stacked, per_seed, forward=None, proj_seed=7):
    x = nn.seed_stacked(np.stack(per_seed), dtype="float64")
    x.requires_grad = True
    out = forward(stacked, x) if forward is not None else stacked(x)
    proj = np.random.default_rng(proj_seed).standard_normal(out.shape)
    (out * nn.Tensor(proj)).sum().backward()
    return x, out, proj


@pytest.mark.parametrize(
    "build_fn,input_shape",
    [
        (lambda rng: nn.Conv2d(2, 3, kernel_size=3, padding=1, rng=rng), (2, 2, 4, 4)),
        (lambda rng: nn.BatchNorm2d(3), (2, 3, 3, 3)),
        (lambda rng: nn.LayerNorm(6), (4, 6)),
        (lambda rng: nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng), (2, 3, 8)),
    ],
    ids=["conv2d", "batchnorm2d", "layernorm", "attention"],
)
class TestSeedBatchedProperties:
    def test_batched_matches_per_seed_loop(self, build_fn, input_shape):
        """Batched forward/backward equals running each replica alone (gradcheck by proxy).

        Each replica's module gradients are already numerically verified by
        the serial gradchecks above; equality of the batched path against the
        per-seed loop therefore certifies the batched gradients too.
        """
        replicas, stacked, per_seed = _stacked_module_and_inputs(build_fn, input_shape)
        x, out, proj = _batched_forward_backward(stacked, per_seed)
        for s, replica in enumerate(replicas):
            xs = nn.Tensor(per_seed[s], dtype="float64")
            xs.requires_grad = True
            out_s = replica(xs)
            (out_s * nn.Tensor(proj[s])).sum().backward()
            np.testing.assert_array_equal(out.data[s], out_s.data, err_msg=f"seed {s} forward")
            np.testing.assert_allclose(x.grad[s], xs.grad, rtol=1e-12, atol=0, err_msg=f"seed {s} input grad")
            for (name, p_batched), (_, p_serial) in zip(
                stacked.named_parameters(), replica.named_parameters()
            ):
                np.testing.assert_allclose(
                    p_batched.grad[s], p_serial.grad, rtol=1e-12, atol=0,
                    err_msg=f"seed {s} param {name}",
                )

    def test_seed_axis_independence(self, build_fn, input_shape):
        """Zeroing seed i's gradient leaves seed j's parameters untouched."""
        from repro.optim import SGD

        _, stacked, per_seed = _stacked_module_and_inputs(build_fn, input_shape)
        params = stacked.parameters()
        if not params:
            pytest.skip("module has no parameters")
        before = [p.data.copy() for p in params]
        _batched_forward_backward(stacked, per_seed)
        # zero seed 0's slice of every gradient, then take an optimizer step
        for p in params:
            assert p.grad is not None and p.grad.shape[0] == 3
            p.grad[0] = 0.0
        SGD(params, lr=0.1, momentum=0.9).step()
        for p, orig in zip(params, before):
            np.testing.assert_array_equal(p.data[0], orig[0])  # seed 0 frozen
            assert any(
                not np.array_equal(q.data[j], o[j])
                for q, o in zip(params, before)
                for j in (1, 2)
            ), "seeds 1/2 should have moved"

    def test_perturbing_one_seed_input_isolates(self, build_fn, input_shape):
        """A perturbed seed-i input changes only seed i's outputs and gradients."""
        _, stacked, per_seed = _stacked_module_and_inputs(build_fn, input_shape)
        x1, out1, _ = _batched_forward_backward(stacked, per_seed)
        grads1 = [p.grad.copy() for p in stacked.parameters()]
        for p in stacked.parameters():
            p.zero_grad()
        perturbed = [arr.copy() for arr in per_seed]
        perturbed[1] = perturbed[1] + 0.25
        x2, out2, _ = _batched_forward_backward(stacked, perturbed)
        np.testing.assert_array_equal(out1.data[0], out2.data[0])
        np.testing.assert_array_equal(out1.data[2], out2.data[2])
        assert not np.array_equal(out1.data[1], out2.data[1])
        np.testing.assert_array_equal(x1.grad[0], x2.grad[0])
        np.testing.assert_array_equal(x1.grad[2], x2.grad[2])
        for g1, p in zip(grads1, stacked.parameters()):
            np.testing.assert_array_equal(g1[0], p.grad[0])
            np.testing.assert_array_equal(g1[2], p.grad[2])
