"""Tests for datasets, loaders, transforms and the synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    ImageClassificationSpec,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
    SyntheticCIFAR10,
    SyntheticCIFAR100,
    SyntheticDetection,
    SyntheticImageNet,
    SyntheticMNIST,
    SyntheticSTL10,
    TransformedDataset,
    make_detection_scenes,
    make_image_classification,
    train_test_split,
)


class TestArrayDatasetAndLoader:
    def test_array_dataset_basicst(self):
        x = np.arange(12).reshape(6, 2)
        y = np.arange(6)
        ds = ArrayDataset(x, y)
        assert len(ds) == 6
        sample_x, sample_y = ds[2]
        np.testing.assert_allclose(sample_x, [4, 5])
        assert sample_y == 2

    def test_array_dataset_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            ArrayDataset()

    def test_subset_and_split(self):
        ds = ArrayDataset(np.arange(10), np.arange(10))
        sub = Subset(ds, [1, 3, 5])
        assert len(sub) == 3
        assert sub[1][0] == 3
        with pytest.raises(IndexError):
            Subset(ds, [20])
        train, test = train_test_split(ds, test_fraction=0.3, seed=0)
        assert len(train) + len(test) == 10
        assert len(test) == 3
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=0.0)

    def test_loader_batching_and_shapes(self):
        ds = ArrayDataset(np.zeros((10, 3, 4, 4)), np.arange(10))
        loader = DataLoader(ds, batch_size=4)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (4, 3, 4, 4)
        assert batches[-1][0].shape == (2, 3, 4, 4)
        assert len(loader) == 3

    def test_loader_drop_last(self):
        ds = ArrayDataset(np.zeros((10, 2)), np.arange(10))
        loader = DataLoader(ds, batch_size=4, drop_last=True)
        assert len(loader) == 2
        assert all(b[0].shape[0] == 4 for b in loader)

    def test_loader_shuffle_changes_order_but_not_content(self):
        ds = ArrayDataset(np.arange(32), np.arange(32))
        loader = DataLoader(ds, batch_size=32, shuffle=True, seed=3)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)  # re-shuffled between epochs
        np.testing.assert_array_equal(np.sort(first), np.arange(32))

    def test_loader_validation(self):
        ds = ArrayDataset(np.zeros((4, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)


class TestSyntheticImages:
    def test_generator_shapes_and_determinism(self):
        spec = ImageClassificationSpec(num_classes=5, num_train=40, num_test=20, image_size=6)
        x1, y1, xt1, yt1 = make_image_classification(spec, seed=7)
        x2, y2, _, _ = make_image_classification(spec, seed=7)
        assert x1.shape == (40, 3, 6, 6)
        assert xt1.shape == (20, 3, 6, 6)
        assert y1.min() >= 0 and y1.max() < 5
        np.testing.assert_allclose(x1, x2)
        np.testing.assert_array_equal(y1, y2)
        x3, _, _, _ = make_image_classification(spec, seed=8)
        assert not np.allclose(x1, x3)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ImageClassificationSpec(num_classes=1, num_train=10, num_test=5)
        with pytest.raises(ValueError):
            ImageClassificationSpec(num_classes=5, num_train=2, num_test=5)

    @pytest.mark.parametrize(
        "cls,classes",
        [
            (SyntheticCIFAR10, 10),
            (SyntheticCIFAR100, 20),
            (SyntheticSTL10, 10),
            (SyntheticImageNet, 40),
        ],
    )
    def test_proxy_datasets(self, cls, classes):
        train, test = cls.splits(seed=0, size_scale=0.2)
        assert train.num_classes == classes
        x, y = train[0]
        assert x.shape == (train.channels, train.image_size, train.image_size)
        assert 0 <= y < classes
        assert len(test) > 0

    def test_classes_are_visually_separable(self):
        """Same-class samples must be closer (on average) than cross-class samples."""
        train = SyntheticCIFAR10("train", seed=0, size_scale=0.5)
        x, y = train.arrays
        flat = x.reshape(len(x), -1)
        same, diff = [], []
        for cls in range(3):
            members = flat[y == cls][:10]
            others = flat[y != cls][:10]
            centroid = members.mean(axis=0)
            same.append(np.linalg.norm(members - centroid, axis=1).mean())
            diff.append(np.linalg.norm(others - centroid, axis=1).mean())
        assert np.mean(diff) > np.mean(same)

    def test_invalid_split_and_scale(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR10("validation")
        with pytest.raises(ValueError):
            SyntheticCIFAR10("train", size_scale=0.0)

    def test_mnist_targets_equal_inputs_in_unit_range(self):
        train, test = SyntheticMNIST.splits(seed=0, size_scale=0.2)
        x, target = train[0]
        np.testing.assert_allclose(x, target)
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert x.shape[0] == 1


class TestSyntheticDetection:
    def test_scene_and_target_format(self):
        images, targets = make_detection_scenes(8, image_size=16, grid_size=4, num_classes=3, seed=0)
        assert images.shape == (8, 3, 16, 16)
        assert targets.shape == (8, 4, 4, 8)
        obj = targets[..., 4]
        assert obj.sum() >= 8  # at least one object per scene
        # box coordinates are fractions of the image
        boxes = targets[..., :4][obj > 0.5]
        assert boxes.min() >= 0.0 and boxes.max() <= 1.0
        # class one-hots only where an object exists
        assert np.all(targets[..., 5:].sum(axis=-1)[obj < 0.5] == 0)
        np.testing.assert_allclose(targets[..., 5:].sum(axis=-1)[obj > 0.5], 1.0)

    def test_grid_divisibility_check(self):
        with pytest.raises(ValueError):
            make_detection_scenes(2, image_size=15, grid_size=4)

    def test_dataset_splits_differ(self):
        train, test = SyntheticDetection.splits(seed=0, size_scale=0.1)
        assert len(train) > 0 and len(test) > 0
        assert not np.allclose(train.arrays[0][0], test.arrays[0][0])


class TestTransforms:
    def test_normalize(self):
        rng = np.random.default_rng(0)
        t = Normalize(mean=[1.0, 2.0, 3.0], std=[2.0, 2.0, 2.0])
        img = np.ones((3, 4, 4))
        out = t(img, rng)
        np.testing.assert_allclose(out[0], 0.0)
        np.testing.assert_allclose(out[2], -1.0)
        with pytest.raises(ValueError):
            t(np.ones((2, 4, 4)), rng)
        with pytest.raises(ValueError):
            Normalize(mean=[0.0], std=[0.0])

    def test_flip_and_crop_preserve_shape(self):
        rng = np.random.default_rng(0)
        img = np.random.default_rng(1).standard_normal((3, 8, 8))
        assert RandomHorizontalFlip(1.0)(img, rng).shape == img.shape
        np.testing.assert_allclose(RandomHorizontalFlip(0.0)(img, rng), img)
        assert RandomCrop(2)(img, rng).shape == img.shape
        np.testing.assert_allclose(RandomCrop(0)(img, rng), img)

    def test_flip_actually_flips(self):
        rng = np.random.default_rng(0)
        img = np.arange(12, dtype=float).reshape(1, 3, 4)
        flipped = RandomHorizontalFlip(1.0)(img, rng)
        np.testing.assert_allclose(flipped, img[:, :, ::-1])

    def test_compose_and_transformed_dataset(self):
        base = ArrayDataset(np.ones((6, 3, 8, 8)), np.arange(6))
        transform = Compose([RandomHorizontalFlip(0.5), Normalize([0.5] * 3, [0.5] * 3)])
        ds = TransformedDataset(base, transform, seed=0)
        x, y = ds[0]
        assert x.shape == (3, 8, 8)
        np.testing.assert_allclose(x, 1.0)  # (1 - 0.5) / 0.5
        assert len(ds) == 6
