"""Tests for the budgeted-training machinery: Budget, Trainer, callbacks, tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.models import MLP, VAE, TinyDetector
from repro.data.synthetic import make_detection_scenes
from repro.optim import SGD, Adam
from repro.schedules import DecayOnPlateauSchedule, LinearSchedule, REXSchedule
from repro.training import (
    Budget,
    ClassificationTask,
    DetectionTask,
    EarlyStopping,
    History,
    LossNaNGuard,
    LRRecorder,
    PAPER_BUDGET_FRACTIONS,
    Trainer,
    VAETask,
)


def tiny_classification_workload(n=64, features=10, classes=3, batch=16, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((classes, features)) * 3.0
    labels = rng.integers(0, classes, size=n)
    x = centers[labels] + rng.standard_normal((n, features))
    ds = ArrayDataset(x, labels)
    train = DataLoader(ds, batch_size=batch, shuffle=True, seed=seed)
    eval_loader = DataLoader(ds, batch_size=batch, seed=seed)
    model = MLP(features, classes, hidden_sizes=(16,), seed=seed)
    return model, train, eval_loader


class TestBudget:
    def test_step_accounting(self):
        budget = Budget(max_epochs=20, fraction=0.25, steps_per_epoch=10)
        assert budget.max_steps == 200
        assert budget.total_steps == 50
        assert budget.num_epochs == 5
        assert budget.total_steps_with_warmup == 50

    def test_tiny_fraction_still_trains_one_step(self):
        budget = Budget(max_epochs=10, fraction=0.001, steps_per_epoch=10)
        assert budget.total_steps == 1
        assert budget.num_epochs == 1

    def test_warmup_excluded_from_budget(self):
        budget = Budget(max_epochs=10, fraction=0.5, steps_per_epoch=8, warmup_steps=16)
        assert budget.total_steps == 40
        assert budget.total_steps_with_warmup == 56

    def test_epoch_of_step(self):
        budget = Budget(max_epochs=4, fraction=1.0, steps_per_epoch=5)
        assert budget.epoch_of_step(0) == 0
        assert budget.epoch_of_step(5) == 1
        with pytest.raises(ValueError):
            budget.epoch_of_step(-1)

    def test_validation_and_describe(self):
        with pytest.raises(ValueError):
            Budget(max_epochs=0, fraction=0.5, steps_per_epoch=5)
        with pytest.raises(ValueError):
            Budget(max_epochs=5, fraction=0.0, steps_per_epoch=5)
        with pytest.raises(ValueError):
            Budget(max_epochs=5, fraction=1.5, steps_per_epoch=5)
        assert "steps" in Budget(max_epochs=5, fraction=0.5, steps_per_epoch=5).describe()

    def test_paper_budget_grid(self):
        assert PAPER_BUDGET_FRACTIONS == (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)


class TestTrainer:
    def test_runs_exact_number_of_steps_and_records_history(self):
        model, train, eval_loader = tiny_classification_workload()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        sched = REXSchedule(opt, total_steps=20)
        trainer = Trainer(model, opt, ClassificationTask(), train, eval_loader, schedule=sched)
        history = trainer.fit(20)
        assert history.num_steps == 20
        assert len(history.learning_rates) == 20
        assert "error" in history.final_metrics
        assert history.learning_rates[0] == pytest.approx(0.1)
        assert history.learning_rates[-1] < 0.1

    def test_training_reduces_loss_and_error(self):
        model, train, eval_loader = tiny_classification_workload(n=128)
        opt = Adam(model.parameters(), lr=0.01)
        task = ClassificationTask()
        before = task.evaluate(model, eval_loader)["error"]
        trainer = Trainer(model, opt, task, train, eval_loader, schedule=REXSchedule(opt, total_steps=120))
        history = trainer.fit(120)
        after = history.final_metrics["error"]
        assert after < before
        assert history.train_losses[-1] < history.train_losses[0]

    def test_lr_recorder_matches_schedule_sequence(self):
        model, train, eval_loader = tiny_classification_workload()
        opt = SGD(model.parameters(), lr=0.5)
        sched = LinearSchedule(opt, total_steps=12)
        recorder = LRRecorder()
        trainer = Trainer(model, opt, ClassificationTask(), train, eval_loader, schedule=sched, callbacks=[recorder])
        trainer.fit(12)
        np.testing.assert_allclose(recorder.curve(), LinearSchedule(None, 12, base_lr=0.5).sequence())

    def test_without_schedule_lr_stays_constant(self):
        model, train, eval_loader = tiny_classification_workload()
        opt = SGD(model.parameters(), lr=0.05)
        trainer = Trainer(model, opt, ClassificationTask(), train, eval_loader)
        history = trainer.fit(5)
        assert set(history.learning_rates) == {0.05}

    def test_nan_guard_stops_divergent_training(self):
        model, train, eval_loader = tiny_classification_workload()
        opt = SGD(model.parameters(), lr=1e9)  # absurd LR to force divergence
        guard = LossNaNGuard(ceiling=1e4)
        trainer = Trainer(model, opt, ClassificationTask(), train, eval_loader, callbacks=[guard])
        history = trainer.fit(50)
        assert guard.tripped
        assert history.num_steps < 50

    def test_plateau_schedule_receives_epoch_metrics(self):
        model, train, eval_loader = tiny_classification_workload()
        opt = SGD(model.parameters(), lr=0.1)
        steps_per_epoch = len(train)
        sched = DecayOnPlateauSchedule(opt, total_steps=steps_per_epoch * 6, patience=1, factor=0.1)
        trainer = Trainer(model, opt, ClassificationTask(), train, eval_loader, schedule=sched)
        history = trainer.fit(steps_per_epoch * 6)
        assert len(history.eval_steps) == 6  # one eval per epoch
        assert sched.best_metric is not None

    def test_early_stopping_callback(self):
        model, train, eval_loader = tiny_classification_workload()
        opt = SGD(model.parameters(), lr=0.0)  # no learning -> metric never improves
        stopper = EarlyStopping(monitor="error", patience=2)
        trainer = Trainer(
            model, opt, ClassificationTask(), train, eval_loader, callbacks=[stopper], eval_every_epoch=True
        )
        steps_per_epoch = len(train)
        history = trainer.fit(steps_per_epoch * 10)
        assert history.num_steps < steps_per_epoch * 10

    def test_invalid_total_steps(self):
        model, train, eval_loader = tiny_classification_workload()
        opt = SGD(model.parameters(), lr=0.1)
        trainer = Trainer(model, opt, ClassificationTask(), train, eval_loader)
        with pytest.raises(ValueError):
            trainer.fit(0)


class TestTasks:
    def test_vae_task(self):
        rng = np.random.default_rng(0)
        images = rng.random((32, 1, 8, 8))
        ds = ArrayDataset(images, images)
        loader = DataLoader(ds, batch_size=8, seed=0)
        model = VAE(image_size=8, channels=1, seed=0)
        task = VAETask()
        metrics = task.evaluate(model, loader)
        assert "elbo" in metrics and metrics["elbo"] > 0
        opt = Adam(model.parameters(), lr=1e-3)
        trainer = Trainer(model, opt, task, loader, loader)
        history = trainer.fit(30)
        assert history.final_metrics["elbo"] < metrics["elbo"]

    def test_vae_task_validation(self):
        with pytest.raises(ValueError):
            VAETask(beta=0.0)

    def test_detection_task(self):
        images, targets = make_detection_scenes(16, seed=0)
        ds = ArrayDataset(images, targets)
        loader = DataLoader(ds, batch_size=8, seed=0)
        model = TinyDetector(seed=0)
        task = DetectionTask()
        metrics = task.evaluate(model, loader)
        assert "map" in metrics
        assert task.higher_is_better

    def test_history_helpers(self):
        history = History()
        for i in range(30):
            history.record_step(lr=0.1, loss=float(30 - i))
        history.record_eval(10, {"error": 5.0})
        assert history.metric_series("error").tolist() == [5.0]
        assert len(history.smoothed_loss(10)) == 21
        assert history.loss_curve()[0] == 30.0
        assert isinstance(history.to_dict(), dict)
