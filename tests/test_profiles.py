"""Tests for the learning-rate profiles (the paper's Section 3 framework)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules.profiles import (
    CompositeProfile,
    ConstantProfile,
    CosineProfile,
    DelayedLinearProfile,
    ExponentialProfile,
    LinearProfile,
    PiecewiseConstantProfile,
    PolynomialProfile,
    Profile,
    REXProfile,
    StepApproxProfile,
)

ALL_PROFILES = [
    LinearProfile(),
    REXProfile(),
    CosineProfile(),
    ExponentialProfile(gamma=-3.0),
    StepApproxProfile(),
    PolynomialProfile(power=2.0),
    ConstantProfile(),
    PiecewiseConstantProfile(),
    DelayedLinearProfile(0.5),
]

progress_values = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestProfileInterface:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: type(p).__name__)
    def test_starts_at_one(self, profile):
        assert float(profile(0.0)) == pytest.approx(1.0)

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: type(p).__name__)
    def test_bounded_between_zero_and_one(self, profile):
        s = np.linspace(0, 1, 101)
        values = np.asarray(profile(s))
        assert np.all(values >= -1e-12)
        assert np.all(values <= 1.0 + 1e-12)

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: type(p).__name__)
    def test_monotone_non_increasing(self, profile):
        s = np.linspace(0, 1, 201)
        values = np.asarray(profile(s))
        assert np.all(np.diff(values) <= 1e-12)

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: type(p).__name__)
    def test_scalar_and_array_agree(self, profile):
        s = np.array([0.0, 0.3, 0.7, 1.0])
        array_vals = np.asarray(profile(s))
        scalar_vals = np.array([profile(float(x)) for x in s])
        np.testing.assert_allclose(array_vals, scalar_vals)

    def test_out_of_range_progress_rejected(self):
        with pytest.raises(ValueError):
            LinearProfile()(1.5)
        with pytest.raises(ValueError):
            LinearProfile()(-0.2)

    def test_curve_helper(self):
        s, v = REXProfile().curve(11)
        assert len(s) == len(v) == 11
        assert s[0] == 0.0 and s[-1] == 1.0
        with pytest.raises(ValueError):
            REXProfile().curve(1)

    def test_base_profile_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Profile()(0.5)


class TestREXProfile:
    def test_matches_paper_formula(self):
        rex = REXProfile()
        for s in np.linspace(0, 1, 50):
            expected = (1 - s) / (0.5 + 0.5 * (1 - s))
            assert float(rex(float(s))) == pytest.approx(expected)

    def test_ends_at_zero(self):
        assert float(REXProfile()(1.0)) == pytest.approx(0.0)

    @given(progress_values)
    @settings(max_examples=200, deadline=None)
    def test_rex_dominates_linear(self, s):
        """REX holds the LR at or above the linear profile everywhere (the
        'interpolation towards delayed linear' property the paper describes)."""
        assert float(REXProfile()(s)) >= float(LinearProfile()(s)) - 1e-12

    @given(progress_values)
    @settings(max_examples=200, deadline=None)
    def test_rex_below_delayed_linear_with_late_onset(self, s):
        """REX never exceeds a sufficiently delayed linear schedule's value...

        ...for the delay of 50%: delayed linear holds 1.0 until 50% then decays;
        REX at 50% is 2/3 < 1.0, and both reach 0 at s=1.
        """
        delayed = DelayedLinearProfile(0.5)
        if s <= 0.5:
            assert float(REXProfile()(s)) <= float(delayed(s)) + 1e-12

    def test_steeper_decay_towards_the_end(self):
        """The REX profile loses more value in the last 10% than in the first 10%."""
        rex = REXProfile()
        early_drop = float(rex(0.0)) - float(rex(0.1))
        late_drop = float(rex(0.9)) - float(rex(1.0))
        assert late_drop > early_drop

    def test_generalised_parameters(self):
        rex = REXProfile(alpha=1.0, beta=0.0)
        # with beta=0 the profile reduces to linear
        for s in np.linspace(0, 1, 20):
            assert float(rex(float(s))) == pytest.approx(1 - s)
        with pytest.raises(ValueError):
            REXProfile(alpha=0.0)


class TestSpecificProfiles:
    def test_linear(self):
        assert float(LinearProfile()(0.25)) == pytest.approx(0.75)

    def test_cosine_midpoint(self):
        assert float(CosineProfile()(0.5)) == pytest.approx(0.5)
        assert float(CosineProfile()(1.0)) == pytest.approx(0.0, abs=1e-12)

    def test_exponential_value_and_validation(self):
        prof = ExponentialProfile(gamma=-3.0)
        assert float(prof(1.0)) == pytest.approx(np.exp(-3.0))
        with pytest.raises(ValueError):
            ExponentialProfile(gamma=1.0)

    def test_step_approx_hits_decay_factor_at_first_milestone(self):
        prof = StepApproxProfile(decay_factor=0.1, first_milestone=0.5)
        assert float(prof(0.5)) == pytest.approx(0.1)
        assert float(prof(1.0)) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            StepApproxProfile(decay_factor=1.5)

    def test_piecewise_constant_steps(self):
        prof = PiecewiseConstantProfile(milestones=(0.5, 0.75), factor=0.1)
        assert float(prof(0.49)) == pytest.approx(1.0)
        assert float(prof(0.5)) == pytest.approx(0.1)
        assert float(prof(0.8)) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            PiecewiseConstantProfile(milestones=())
        with pytest.raises(ValueError):
            PiecewiseConstantProfile(milestones=(1.5,))

    def test_polynomial_and_validation(self):
        assert float(PolynomialProfile(2.0)(0.5)) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            PolynomialProfile(0.0)

    def test_delayed_linear_holds_then_decays(self):
        prof = DelayedLinearProfile(0.6)
        assert float(prof(0.3)) == pytest.approx(1.0)
        assert float(prof(0.6)) == pytest.approx(1.0)
        assert float(prof(0.8)) == pytest.approx(0.5)
        assert float(prof(1.0)) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            DelayedLinearProfile(1.0)

    def test_composite_profile_continuous_at_switch(self):
        prof = CompositeProfile(ConstantProfile(), LinearProfile(), switch=0.4)
        eps = 1e-6
        before = float(prof(0.4 - eps))
        after = float(prof(0.4 + eps))
        assert before == pytest.approx(after, abs=1e-3)
        assert float(prof(1.0)) == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            CompositeProfile(ConstantProfile(), LinearProfile(), switch=0.0)


class TestProfileProperties:
    @given(progress_values, st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_rex_family_always_normalised(self, s, alpha):
        prof = REXProfile(alpha=alpha, beta=1.0 - min(alpha, 0.99) if alpha < 1 else 0.5)
        assert float(prof(0.0)) == pytest.approx(1.0)
        value = float(prof(s))
        assert -1e-9 <= value <= 1.0 + 1e-9

    @given(st.floats(min_value=0.01, max_value=0.99), progress_values)
    @settings(max_examples=100, deadline=None)
    def test_delayed_linear_interpolates_between_constant_and_linear(self, delay, s):
        delayed = float(DelayedLinearProfile(delay)(s))
        linear = float(LinearProfile()(s))
        assert linear - 1e-12 <= delayed <= 1.0 + 1e-12
