"""End-to-end tests for ``python -m repro serve``: the experiment server.

The headline contract: two clients concurrently requesting the same artifact
trigger exactly one training run per unique cell (single-flight dedup), and
the reports each client writes are byte-identical to what a local
``repro report`` produces from the same cache.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.cli.serve import ExperimentServer, request_report
from repro.execution import ExecutionContext
from repro.reporting import execute_artifact, get_artifact, resolve_scale, write_report

ARTIFACT = "table4"
SCALE = "micro"
SEEDS = (0,)


@pytest.fixture()
def server(tmp_path):
    context = ExecutionContext(cache=tmp_path / "cache")
    srv = ExperimentServer(context, port=0)
    srv.start()
    yield srv
    srv.stop()


def fetch_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.loads(response.read())


class TestEndpoints:
    def test_healthz_and_stats(self, server):
        assert fetch_json(f"{server.url}/healthz")["ok"]
        stats = fetch_json(f"{server.url}/stats")
        assert stats["requests"] == 0 and stats["cells_trained"] == 0

    def test_artifact_listing(self, server):
        listing = fetch_json(f"{server.url}/v1/artifacts")
        assert ARTIFACT in listing["artifacts"]

    def test_unknown_artifact_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/v1/report?artifact=nope", timeout=10.0)
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/v1/nothing", timeout=10.0)
        assert excinfo.value.code == 404

    def test_server_requires_cache(self):
        with pytest.raises(ValueError, match="cache"):
            ExperimentServer(ExecutionContext())


class TestServedReports:
    def test_report_stream_and_byte_identical_output(self, server, tmp_path):
        """One request: NDJSON events arrive in order, files match local output."""
        events = []
        out = tmp_path / "served"
        report = request_report(
            server.url,
            ARTIFACT,
            scale=SCALE,
            seeds=SEEDS,
            out_dir=out,
            progress=lambda line: events.append(json.loads(line)),
        )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "plan" and "executed" in kinds
        assert report["event"] == "report" and report["artifact"] == ARTIFACT

        local_dir = tmp_path / "local"
        artifact = get_artifact(ARTIFACT)
        scale = resolve_scale(SCALE, seeds=SEEDS)
        store, _ = execute_artifact(
            artifact, scale, context=ExecutionContext(cache=tmp_path / "local-cache")
        )
        write_report(artifact.build(store, scale), scale, local_dir)
        for suffix in (".md", ".json"):
            served = (out / f"{ARTIFACT}{suffix}").read_bytes()
            local = (local_dir / f"{ARTIFACT}{suffix}").read_bytes()
            assert served == local, f"served {suffix} differs from local report"

    def test_concurrent_clients_train_each_cell_once(self, server, tmp_path):
        """Single-flight dedup: two identical in-flight requests share one run."""
        results: dict[str, dict] = {}

        def client(name: str) -> None:
            results[name] = request_report(
                server.url, ARTIFACT, scale=SCALE, seeds=SEEDS, out_dir=tmp_path / name
            )

        threads = [threading.Thread(target=client, args=(f"c{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results["c0"]["markdown"] == results["c1"]["markdown"]
        assert results["c0"]["json"] == results["c1"]["json"]
        assert (tmp_path / "c0" / f"{ARTIFACT}.md").read_bytes() == (
            tmp_path / "c1" / f"{ARTIFACT}.md"
        ).read_bytes()

        stats = server.stats()
        unique_cells = stats["cache_entries"]
        assert unique_cells > 0
        # every unique cell trained exactly once across BOTH clients
        assert stats["cells_trained"] == unique_cells
        assert stats["requests"] == 2

    def test_second_request_is_pure_cache(self, server, tmp_path):
        request_report(server.url, ARTIFACT, scale=SCALE, seeds=SEEDS)
        trained_once = server.stats()["cells_trained"]
        events = []
        request_report(
            server.url,
            ARTIFACT,
            scale=SCALE,
            seeds=SEEDS,
            progress=lambda line: events.append(json.loads(line)),
        )
        assert server.stats()["cells_trained"] == trained_once
        assert all(event["event"] != "executed" for event in events)

    def test_client_raises_on_server_error(self, server):
        with pytest.raises(RuntimeError):
            request_report(server.url, "definitely-not-an-artifact")
