"""Tests for the unified retry/backoff policy (:mod:`repro.execution.retry`).

Covers the deterministic jitter contract (same policy + key + attempt ==
same delay, everywhere), the backoff schedule shape, the ``call`` loop's
retry/raise/deadline semantics with injected sleep/clock, and the validation
surface of the frozen dataclass.
"""

from __future__ import annotations

import pytest

from repro.execution.retry import RetryPolicy, hash_uniform


class TestHashUniform:
    def test_in_unit_interval_and_deterministic(self):
        draws = [hash_uniform(0, "key", i) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [hash_uniform(0, "key", i) for i in range(100)]

    def test_distinct_tokens_give_distinct_draws(self):
        assert hash_uniform(0, "a") != hash_uniform(0, "b")
        assert hash_uniform(0, "a") != hash_uniform(1, "a")

    def test_roughly_uniform(self):
        draws = [hash_uniform("uniformity", i) for i in range(2000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - 0.5) < 0.02


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(base_delay=-0.1),
            dict(max_delay=-1.0),
            dict(multiplier=0.5),
            dict(jitter=-0.1),
            dict(jitter=1.0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_for_attempts(self):
        assert RetryPolicy.for_attempts(5).max_attempts == 5
        assert RetryPolicy.for_attempts(0).max_attempts == 1  # clamped
        assert RetryPolicy.for_attempts(4, base_delay=0.0).base_delay == 0.0

    def test_frozen_and_hashable(self):
        policy = RetryPolicy()
        with pytest.raises(AttributeError):
            policy.max_attempts = 7
        assert hash(policy) == hash(RetryPolicy())


class TestSchedule:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_max_delay_caps_the_schedule(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=10.0, max_delay=0.5, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.5, 0.5, 0.5, 0.5])

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=1.0, jitter=0.25)
        first = list(policy.delays(key="cell:3"))
        assert first == list(policy.delays(key="cell:3"))
        for delay in first:
            assert 0.75 <= delay <= 1.25

    def test_jitter_decorrelates_keys_and_seeds(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        assert policy.delay_for(0, key="a") != policy.delay_for(0, key="b")
        reseeded = RetryPolicy(base_delay=1.0, jitter=0.5, seed=1)
        assert policy.delay_for(0, key="a") != reseeded.delay_for(0, key="a")

    def test_single_attempt_policy_has_empty_schedule(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []


class TestCall:
    def test_returns_first_success_without_sleeping(self):
        slept = []
        result = RetryPolicy().call(lambda: 42, sleep=slept.append)
        assert result == 42 and slept == []

    def test_retries_until_success(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        assert policy.call(flaky, retry_on=(OSError,), sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert slept == pytest.approx([0.1, 0.2])

    def test_raises_after_exhausting_attempts(self):
        attempts = []

        def always_fails():
            attempts.append(1)
            raise OSError("still down")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(OSError, match="still down"):
            policy.call(always_fails, retry_on=(OSError,), sleep=lambda _: None)
        assert len(attempts) == 3

    def test_non_matching_exception_propagates_immediately(self):
        attempts = []

        def wrong_kind():
            attempts.append(1)
            raise KeyError("logic bug")

        with pytest.raises(KeyError):
            RetryPolicy().call(wrong_kind, retry_on=(OSError,), sleep=lambda _: None)
        assert len(attempts) == 1

    def test_on_retry_sees_index_exception_and_delay(self):
        seen = []

        def fails_twice(state=[]):
            state.append(1)
            if len(state) < 3:
                raise OSError(f"fail {len(state)}")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        policy.call(
            fails_twice,
            retry_on=(OSError,),
            sleep=lambda _: None,
            on_retry=lambda i, exc, d: seen.append((i, str(exc), d)),
        )
        assert seen == [(0, "fail 1", pytest.approx(0.1)), (1, "fail 2", pytest.approx(0.2))]

    def test_total_deadline_abandons_retry(self):
        clock_value = [0.0]
        attempts = []

        def failing():
            attempts.append(1)
            clock_value[0] += 1.0  # each attempt burns a simulated second
            raise OSError("down")

        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=1.0, jitter=0.0, total_deadline=2.5
        )
        with pytest.raises(OSError):
            policy.call(
                failing,
                retry_on=(OSError,),
                sleep=lambda d: clock_value.__setitem__(0, clock_value[0] + d),
                clock=lambda: clock_value[0],
            )
        # attempt 1 at t=1 (retry to t=2 fits 2.5), attempt 2 at t=3 (t=4 > 2.5: abandon)
        assert len(attempts) == 2

    def test_deterministic_replay_of_the_whole_loop(self):
        def run_once():
            slept = []
            state = []

            def flaky():
                state.append(1)
                if len(state) < 4:
                    raise OSError("x")
                return "done"

            RetryPolicy(max_attempts=4, base_delay=0.05).call(
                flaky, retry_on=(OSError,), key="replay", sleep=slept.append
            )
            return slept

        assert run_once() == run_once()
