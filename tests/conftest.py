"""Shared fixtures for the test suite.

The numerical gradient helpers live in :mod:`gradcheck`; import them with
``from gradcheck import ...`` — importing them from ``conftest`` is fragile
(the module name collides with ``benchmarks/conftest.py`` when both suites
run in one pytest invocation).
"""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import assert_grad_close, numerical_gradient  # noqa: F401  (re-export)

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_tensor(rng: np.random.Generator) -> Tensor:
    return Tensor(rng.standard_normal((4, 5)), requires_grad=True)
