"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "assert_grad_close"]


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn with respect to x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_tensor(rng: np.random.Generator) -> Tensor:
    return Tensor(rng.standard_normal((4, 5)), requires_grad=True)
