"""Shared fixtures for the test suite.

The numerical gradient helpers live in :mod:`gradcheck`; import them with
``from gradcheck import ...`` — importing them from ``conftest`` is fragile
(the module name collides with ``benchmarks/conftest.py`` when both suites
run in one pytest invocation).
"""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import assert_grad_close, numerical_gradient  # noqa: F401  (re-export)

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def make_micro_artifact():
    """Factory for sub-second real-training artifacts, deregistered on teardown.

    ``factory(name, seeds=(0,))`` registers an artifact whose plan is a micro
    RN20-CIFAR10 budget sweep (one cell per seed) and whose build emits one
    row per record plus a ``"rex@25%"`` headline number.
    """
    from repro.execution import plan_budget_sweep
    from repro.reporting import ARTIFACTS, Artifact, ArtifactResult, ResultTable, register_artifact

    registered: list[str] = []

    def factory(name: str, seeds: tuple[int, ...] = (0,)) -> Artifact:
        def plan(scale):
            return plan_budget_sweep(
                "RN20-CIFAR10", "rex", "sgdm", budgets=(0.25,), seeds=seeds,
                size_scale=0.12, epoch_scale=0.1,
            )

        def build(store, scale):
            rows = [[r.schedule, str(r.seed), f"{r.metric:.4f}"] for r in store]
            return ArtifactResult(
                name=name,
                paper_ref="Table M",
                title=f"micro test artifact {name}",
                tables=[ResultTable("", ["Schedule", "Seed", "Metric"], rows)],
                reproduced={"rex@25%": store.mean_metric()},
            )

        artifact = register_artifact(
            Artifact(name=name, kind="table", paper_ref="Table M",
                     title=f"micro test artifact {name}", plan=plan, build=build)
        )
        # the registry keys on the lowercased name; pop the same key
        registered.append(name.lower())
        return artifact

    yield factory
    for name in registered:
        ARTIFACTS.pop(name, None)


@pytest.fixture
def small_tensor(rng: np.random.Generator) -> Tensor:
    return Tensor(rng.standard_normal((4, 5)), requires_grad=True)
