"""Per-pass differential oracle for the plan compiler (:mod:`repro.nn.plan_passes`).

The contract: every compiler pass — buffer aliasing, elementwise-chain fusion,
dead-node elimination, parallel wave dispatch — and every combination of them
must leave planned training **bitwise identical** to the unplanned loop, for
every registry model in both dtypes.  Passes may only change allocation and
wall-clock behaviour; ``--no-plan`` (here: an unplanned baseline) is the
oracle.  On top of the equality wall, each pass must demonstrably *engage* on
a workload shaped for it (chains fused, arena positions shared, leaf items
dropped), and a mid-loop shape divergence must still fall back to allocation
without ever applying a stale compiled schedule.
"""

from __future__ import annotations

import os
from contextlib import nullcontext

import numpy as np
import pytest

from test_batched_equivalence import _as_inputs, _model_case
from test_plan import _assert_bitwise
from repro import nn
from repro.models.registry import MODEL_REGISTRY
from repro.nn.plan import (
    DEFAULT_PASSES,
    KNOWN_PASSES,
    GraphPlan,
    parse_passes,
    plan_passes_default,
)
from repro.optim import SGD

DTYPES = ("float64", "float32")
STEPS = 4
#: each pass alone, no passes, and everything (including opt-in parallel)
PASS_SPECS = ("none", "alias", "fuse", "dce", "parallel", "default", "all")

_baselines: dict[tuple[str, str], tuple[list, dict]] = {}


def _train(name: str, dtype: str, passes: str | None, steps: int = STEPS):
    """One serial step loop; ``passes=None`` means unplanned."""
    build_fn, batch_fn = _model_case(name)
    losses = []
    plan = GraphPlan(passes=passes) if passes is not None else None
    with nn.default_dtype(dtype):
        batch = batch_fn(np.random.default_rng(7))[0]
        loss_fn = batch_fn(np.random.default_rng(0))[1]
        model = build_fn(0)
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        for _ in range(steps):
            inputs = _as_inputs(batch, stacked=False)
            with plan.step() if plan is not None else nullcontext():
                loss = loss_fn(model, *inputs)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            losses.append(loss.data.copy())
        state = model.state_dict()
    return losses, state, plan


def _baseline(name: str, dtype: str):
    key = (name, dtype)
    if key not in _baselines:
        losses, state, _ = _train(name, dtype, passes=None)
        _baselines[key] = (losses, state)
    return _baselines[key]


# ---------------------------------------------------------------------------
# the wall: every pass, alone and combined, for every model in both dtypes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", PASS_SPECS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_pass_trajectory_bitwise_equals_unplanned(name, dtype, spec):
    plain_losses, plain_state = _baseline(name, dtype)
    plan_losses, plan_state, plan = _train(name, dtype, passes=spec)
    for step, (a, b) in enumerate(zip(plan_losses, plain_losses)):
        _assert_bitwise(a, b, f"{name}/{dtype}/{spec} loss at step {step}")
    assert plan_state.keys() == plain_state.keys()
    for key in plain_state:
        _assert_bitwise(plan_state[key], plain_state[key], f"{name}/{dtype}/{spec} {key}")
    assert plan.diverged_steps == 0
    assert plan.topo_captures == 1
    assert plan.topo_replays == STEPS - 1
    if "parallel" in plan.passes:
        assert plan._waves is not None  # wave dispatch actually compiled


# ---------------------------------------------------------------------------
# each pass must engage on a workload shaped for it
# ---------------------------------------------------------------------------

def _chain_workload(passes: str | None, steps: int = STEPS):
    """A tanh-GELU MLP dense in single-consumer elementwise chains."""
    with nn.default_dtype("float64"):
        rng = np.random.default_rng(5)
        w1 = nn.Parameter(rng.standard_normal((8, 16)))
        w2 = nn.Parameter(rng.standard_normal((16, 4)))
        x = nn.Tensor(rng.standard_normal((12, 8)))
        optimizer = SGD([w1, w2], lr=0.05, momentum=0.9)
        plan = GraphPlan(passes=passes) if passes is not None else None
        losses = []
        for _ in range(steps):
            with plan.step() if plan is not None else nullcontext():
                h = x @ w1
                h = (h * 0.5) * ((h * 0.797884).tanh() + 1.0)
                out = -((h @ w2).sigmoid().log())
                loss = out.sum() / 48.0
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            losses.append(loss.data.copy())
        return losses, (w1.data.copy(), w2.data.copy()), plan


def test_fusion_finds_chains_and_stays_bitwise():
    plain_losses, plain_params, _ = _chain_workload(None)
    fused_losses, fused_params, plan = _chain_workload("fuse")
    assert plan.fused_chains > 0
    for step, (a, b) in enumerate(zip(fused_losses, plain_losses)):
        _assert_bitwise(a, b, f"fused loss at step {step}")
    for got, want in zip(fused_params, plain_params):
        _assert_bitwise(got, want, "fused parameter")


def test_all_passes_on_chain_workload_bitwise():
    plain_losses, plain_params, _ = _chain_workload(None)
    losses, params, plan = _chain_workload("all")
    assert plan.fused_chains > 0 and plan.dce_dropped > 0
    for step, (a, b) in enumerate(zip(losses, plain_losses)):
        _assert_bitwise(a, b, f"all-passes loss at step {step}")
    for got, want in zip(params, plain_params):
        _assert_bitwise(got, want, "all-passes parameter")


@pytest.mark.parametrize("name", ["mlp", "resnet20"])
def test_alias_pass_shrinks_arena(name):
    _, _, plain_plan = _train(name, "float32", passes="none")
    _, _, alias_plan = _train(name, "float32", passes="alias")
    assert alias_plan.aliased_positions > 0
    # per-position bytes unchanged, distinct storage strictly smaller
    assert alias_plan.arena_nbytes_raw() == plain_plan.arena_nbytes_raw()
    assert alias_plan.arena_nbytes() < plain_plan.arena_nbytes()
    assert alias_plan.arena_nbytes() < alias_plan.arena_nbytes_raw()


def test_dce_drops_leaf_items():
    _, _, plan = _train("mlp", "float32", passes="dce")
    assert plan.dce_dropped > 0


def test_steady_state_counters_hold_under_all_passes():
    _, _, plan = _train("mlp", "float32", passes="all", steps=6)
    assert plan.fresh_checkouts == len(plan._buffers)
    assert plan.reused_checkouts == (plan.steps - 1) * plan.fresh_checkouts


# ---------------------------------------------------------------------------
# divergence safety: a compiled schedule must never outlive its shapes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", ["all", "default"])
def test_shape_change_falls_back_under_passes(spec):
    build_fn, batch_fn = _model_case("mlp")

    def run(passes: str | None):
        plan = GraphPlan(passes=passes) if passes is not None else None
        losses = []
        with nn.default_dtype("float32"):
            full = batch_fn(np.random.default_rng(7))[0]
            partial = tuple(arr[: max(1, len(arr) // 2)] for arr in full)
            loss_fn = batch_fn(np.random.default_rng(0))[1]
            model = build_fn(0)
            optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
            for batch in (full, full, partial, full):
                inputs = _as_inputs(batch, stacked=False)
                with plan.step() if plan is not None else nullcontext():
                    loss = loss_fn(model, *inputs)
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                losses.append(loss.data.copy())
            state = model.state_dict()
        return losses, state, plan

    plain_losses, plain_state, _ = run(None)
    plan_losses, plan_state, plan = run(spec)
    for step, (a, b) in enumerate(zip(plan_losses, plain_losses)):
        _assert_bitwise(a, b, f"loss at step {step}")
    for key in plain_state:
        _assert_bitwise(plan_state[key], plain_state[key], f"param {key}")
    assert plan.diverged_steps == 1


# ---------------------------------------------------------------------------
# configuration surface: parse_passes, env default, trainer/engine plumbing
# ---------------------------------------------------------------------------

def test_parse_passes_specs():
    assert parse_passes(None) == DEFAULT_PASSES
    assert parse_passes("default") == DEFAULT_PASSES
    assert parse_passes("all") == KNOWN_PASSES
    for off in ("", "none", "off", "NONE"):
        assert parse_passes(off) == ()
    assert parse_passes("fuse, alias") == ("fuse", "alias")
    assert parse_passes(["dce", "dce", "alias"]) == ("dce", "alias")  # dedupes
    assert parse_passes(()) == ()
    with pytest.raises(ValueError, match="unknown plan pass"):
        parse_passes("alias,bogus")


def test_plan_passes_default_env(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_PASSES", raising=False)
    assert plan_passes_default() == DEFAULT_PASSES
    monkeypatch.setenv("REPRO_PLAN_PASSES", "none")
    assert plan_passes_default() == ()
    monkeypatch.setenv("REPRO_PLAN_PASSES", "alias")
    assert plan_passes_default() == ("alias",)
    # GraphPlan() with no explicit passes defers to the env
    assert GraphPlan().passes == ("alias",)
    assert GraphPlan(passes="fuse").passes == ("fuse",)  # explicit wins


def test_trainer_threads_plan_passes_to_its_plan():
    from repro.experiments.settings import get_setting
    from repro.experiments.workloads import build_workload
    from repro.training.trainer import Trainer
    from repro.optim import build_optimizer

    with nn.default_dtype("float32"):
        workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.1)
        optimizer = build_optimizer("sgdm", workload.model.parameters(), lr=0.05)
        trainer = Trainer(
            model=workload.model,
            optimizer=optimizer,
            task=workload.task,
            train_loader=workload.train_loader,
            dtype="float32",
            plan=True,
            plan_passes="alias,dce",
        )
        trainer.fit(2)
    assert trainer.last_plan is not None
    assert trainer.last_plan.passes == ("alias", "dce")


def test_context_plan_passes_from_env_and_validation():
    from repro.execution.context import ExecutionContext

    ctx = ExecutionContext.from_env({"REPRO_PLAN_PASSES": "fuse"})
    assert ctx.plan_passes == "fuse"
    assert ExecutionContext.from_env({}).plan_passes is None
    with pytest.raises(ValueError, match="unknown plan pass"):
        ExecutionContext(plan_passes="bogus")


def test_engine_plan_env_ships_passes(monkeypatch):
    from repro.execution.engine import _plan_env

    monkeypatch.delenv("REPRO_PLAN", raising=False)
    monkeypatch.delenv("REPRO_PLAN_PASSES", raising=False)
    with _plan_env(True, "alias,fuse"):
        assert os.environ["REPRO_PLAN"] == "1"
        assert os.environ["REPRO_PLAN_PASSES"] == "alias,fuse"
    assert "REPRO_PLAN" not in os.environ
    assert "REPRO_PLAN_PASSES" not in os.environ
    monkeypatch.setenv("REPRO_PLAN_PASSES", "none")
    with _plan_env(None, "all"):
        assert os.environ["REPRO_PLAN_PASSES"] == "all"
    assert os.environ["REPRO_PLAN_PASSES"] == "none"


def test_cli_plan_passes_flag():
    from repro.cli.main import build_parser

    args = build_parser().parse_args(["run", "--plan-passes", "alias,fuse"])
    assert args.plan_passes == "alias,fuse"
    args = build_parser().parse_args(["run"])
    assert args.plan_passes is None


def test_batched_trainer_threads_plan_passes():
    import inspect

    from repro.training.batched import BatchedTrainer

    assert "plan_passes" in inspect.signature(BatchedTrainer.__init__).parameters
