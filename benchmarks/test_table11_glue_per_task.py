"""Table 11: per-task GLUE scores of the BERT proxy after 1/2/3 epochs."""

from repro.data import GLUE_TASKS
from repro.utils.textplot import ascii_table

from bench_utils import emit, run_once
from helpers import glue_store


def test_table11_glue_per_task(benchmark):
    _, results = run_once(benchmark, glue_store)
    headers = ["Method"] + list(GLUE_TASKS)
    rows = []
    for schedule, result in results.items():
        row = [schedule]
        for task in GLUE_TASKS:
            scores = result.per_task_scores[task]
            row.append("/".join(f"{s:.1f}" for s in scores))
        rows.append(row)
    emit("table11_glue_per_task", ascii_table(rows, headers=headers))
    for result in results.values():
        assert set(result.per_task_scores) == set(GLUE_TASKS)
