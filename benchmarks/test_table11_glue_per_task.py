"""Table 11: per-task GLUE scores of the BERT proxy after 1/2/3 epochs."""

from repro.data import GLUE_TASKS

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table11_glue_per_task(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table11"))
    emit("table11_glue_per_task", result.as_text())
    (table,) = result.tables
    assert table.headers == ["Method"] + list(GLUE_TASKS)
    store = artifact_store("table11")
    per_schedule = {r.schedule: set() for r in store}
    for record in store:
        per_schedule[record.schedule].add(record.extra["task"])
    assert all(tasks == set(GLUE_TASKS) for tasks in per_schedule.values())
