"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper by resolving it
from the declarative artifact registry (:mod:`repro.reporting`) — the same
source of truth the ``python -m repro`` CLI drives — and formatting the built
result.  The benchmarks are therefore thin wrappers: what they run, and in
which order, is defined exactly once, in ``repro/reporting/artifacts.py``.

Scale
-----
The proxy workloads are already laptop-sized, but a full-fidelity sweep of
every cell still takes tens of minutes; the benchmark defaults therefore run a
reduced-but-complete version of each experiment.  Set the environment variable
``REPRO_BENCH_SCALE`` to ``full`` for the full proxy scale, ``small``
(default) for the reduced scale, or ``tiny``/``micro`` for smoke-test passes.

Execution
---------
Sweeps go through :mod:`repro.execution`.  ``REPRO_BENCH_WORKERS=N`` trains
cells on ``N`` worker processes, and ``REPRO_BENCH_CACHE_DIR=PATH`` persists
every trained cell in a content-addressed cache so repeat benchmark
invocations skip training entirely.  Without a cache directory an in-memory
run cache still deduplicates cells *within* the session, so the Table 1 /
Figure 1 aggregates reuse the per-setting sweeps instead of re-training.
Neither option changes results: stores are record-for-record identical.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.execution import ExecutionContext, InMemoryRunCache
from repro.reporting import ArtifactResult, SCALES, Scale, execute_artifact, get_artifact
from repro.utils.records import RunStore

__all__ = [
    "artifact_result",
    "artifact_store",
    "bench_cache",
    "bench_context",
    "bench_scale",
    "bench_workers",
]

#: shared across all benchmarks in the session, so artifacts that share cells
#: (the per-setting tables and the Table 1 / Figure 1 aggregates) train each
#: cell exactly once even without REPRO_BENCH_CACHE_DIR
_MEMO = InMemoryRunCache()


def bench_scale() -> Scale:
    """Resolve the benchmark scale preset from ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name not in SCALES:
        raise KeyError(f"unknown REPRO_BENCH_SCALE={name!r}; options: {sorted(SCALES)}")
    return SCALES[name]


def bench_context() -> ExecutionContext:
    """The session's execution context, resolved from the ``REPRO_*`` environment.

    :meth:`ExecutionContext.from_env` owns the variable parsing
    (``REPRO_BENCH_WORKERS``, ``REPRO_BENCH_CACHE_DIR``, ``REPRO_PLAN``, ...);
    this helper only substitutes the session-wide in-memory memo when no cache
    directory (or store URL) was configured.
    """
    context = ExecutionContext.from_env()
    if context.cache is None:
        context = context.replace(cache=_MEMO)
    return context


def bench_workers() -> int:
    """Worker-process count from ``REPRO_BENCH_WORKERS`` (default: serial)."""
    return bench_context().workers


def bench_cache():
    """The run cache: ``REPRO_BENCH_CACHE_DIR`` if set, else the session memo."""
    return bench_context().resolve_cache()


@lru_cache(maxsize=None)
def artifact_store(name: str) -> RunStore:
    """Execute (or fetch from cache) every cell of one registered artifact."""
    store, _ = execute_artifact(get_artifact(name), bench_scale(), context=bench_context())
    return store


def artifact_result(name: str) -> ArtifactResult:
    """Build one registered artifact from its (cached) records."""
    return get_artifact(name).build(artifact_store(name), bench_scale())
