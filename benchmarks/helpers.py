"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper by resolving it
from the declarative artifact registry (:mod:`repro.reporting`) — the same
source of truth the ``python -m repro`` CLI drives — and formatting the built
result.  The benchmarks are therefore thin wrappers: what they run, and in
which order, is defined exactly once, in ``repro/reporting/artifacts.py``.

Scale
-----
The proxy workloads are already laptop-sized, but a full-fidelity sweep of
every cell still takes tens of minutes; the benchmark defaults therefore run a
reduced-but-complete version of each experiment.  Set the environment variable
``REPRO_BENCH_SCALE`` to ``full`` for the full proxy scale, ``small``
(default) for the reduced scale, or ``tiny``/``micro`` for smoke-test passes.

Execution
---------
Sweeps go through :mod:`repro.execution`.  ``REPRO_BENCH_WORKERS=N`` trains
cells on ``N`` worker processes, and ``REPRO_BENCH_CACHE_DIR=PATH`` persists
every trained cell in a content-addressed cache so repeat benchmark
invocations skip training entirely.  Without a cache directory an in-memory
run cache still deduplicates cells *within* the session, so the Table 1 /
Figure 1 aggregates reuse the per-setting sweeps instead of re-training.
Neither option changes results: stores are record-for-record identical.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.execution import InMemoryRunCache, RunCache
from repro.reporting import ArtifactResult, SCALES, Scale, execute_artifact, get_artifact
from repro.utils.records import RunStore

__all__ = [
    "artifact_result",
    "artifact_store",
    "bench_cache",
    "bench_scale",
    "bench_workers",
]

#: shared across all benchmarks in the session, so artifacts that share cells
#: (the per-setting tables and the Table 1 / Figure 1 aggregates) train each
#: cell exactly once even without REPRO_BENCH_CACHE_DIR
_MEMO = InMemoryRunCache()


def bench_scale() -> Scale:
    """Resolve the benchmark scale preset from ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name not in SCALES:
        raise KeyError(f"unknown REPRO_BENCH_SCALE={name!r}; options: {sorted(SCALES)}")
    return SCALES[name]


def bench_workers() -> int:
    """Worker-process count from ``REPRO_BENCH_WORKERS`` (default: serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def bench_cache() -> RunCache | InMemoryRunCache:
    """The run cache: ``REPRO_BENCH_CACHE_DIR`` if set, else the session memo."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    return RunCache(cache_dir) if cache_dir else _MEMO


@lru_cache(maxsize=None)
def artifact_store(name: str) -> RunStore:
    """Execute (or fetch from cache) every cell of one registered artifact."""
    store, _ = execute_artifact(
        get_artifact(name), bench_scale(), max_workers=bench_workers(), cache=bench_cache()
    )
    return store


def artifact_result(name: str) -> ArtifactResult:
    """Build one registered artifact from its (cached) records."""
    return get_artifact(name).build(artifact_store(name), bench_scale())
