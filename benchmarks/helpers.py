"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Training runs
are cached per process (``functools.lru_cache``) so that aggregate benchmarks
(Table 1, Figure 1) reuse the per-setting sweeps instead of re-training.

Scale
-----
The proxy workloads are already laptop-sized, but a full-fidelity sweep of
every cell still takes tens of minutes; the benchmark defaults therefore run a
reduced-but-complete version of each experiment.  Set the environment variable
``REPRO_BENCH_SCALE`` to ``full`` for the full proxy scale, ``small``
(default) for the reduced scale, or ``tiny`` for a smoke-test pass.

Execution
---------
Sweeps go through :mod:`repro.execution`.  ``REPRO_BENCH_WORKERS=N`` trains
cells on ``N`` worker processes, and ``REPRO_BENCH_CACHE_DIR=PATH`` persists
every trained cell in a content-addressed cache so repeat benchmark
invocations (and the cross-table aggregates) skip training entirely.  Neither
changes results: stores are record-for-record identical either way.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.experiments import (
    GlueRunConfig,
    get_setting,
    glue_result_to_records,
    run_glue_benchmark,
    run_setting_table,
)
from repro.schedules import PAPER_SCHEDULES
from repro.utils.records import RunStore

__all__ = [
    "bench_scale",
    "bench_workers",
    "bench_cache_dir",
    "SCALE_PRESETS",
    "setting_store",
    "glue_store",
    "combined_store",
    "COMPARED_SCHEDULES",
]

#: the schedule rows of the paper's per-setting tables
COMPARED_SCHEDULES: tuple[str, ...] = PAPER_SCHEDULES

SCALE_PRESETS: dict[str, dict[str, float]] = {
    # size_scale shrinks the proxy datasets, epoch_scale shrinks max_epochs.
    "full": {"size_scale": 1.0, "epoch_scale": 1.0, "num_seeds": 2},
    "small": {"size_scale": 0.75, "epoch_scale": 0.5, "num_seeds": 1},
    "tiny": {"size_scale": 0.2, "epoch_scale": 0.12, "num_seeds": 1},
}


def bench_scale() -> dict[str, float]:
    """Resolve the benchmark scale preset from ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name not in SCALE_PRESETS:
        raise KeyError(f"unknown REPRO_BENCH_SCALE={name!r}; options: {sorted(SCALE_PRESETS)}")
    return dict(SCALE_PRESETS[name])


def bench_workers() -> int:
    """Worker-process count from ``REPRO_BENCH_WORKERS`` (default: serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def bench_cache_dir() -> str | None:
    """Run-cache directory from ``REPRO_BENCH_CACHE_DIR`` (default: no cache)."""
    return os.environ.get("REPRO_BENCH_CACHE_DIR") or None


@lru_cache(maxsize=None)
def setting_store(setting_name: str, schedules: tuple[str, ...] = COMPARED_SCHEDULES) -> RunStore:
    """Run (and cache) the full schedule x optimizer x budget grid for one setting."""
    scale = bench_scale()
    setting = get_setting(setting_name)
    # The bare-optimizer "none" row and "plateau" are omitted for settings the
    # paper does not report them on (YOLO-VOC has no plateau row, RN50-ImageNet
    # has neither).
    usable = [s for s in schedules if _schedule_in_paper_table(setting_name, s)]
    return run_setting_table(
        setting_name,
        schedules=usable,
        optimizers=setting.optimizers,
        budgets=setting.budget_fractions,
        num_seeds=int(scale["num_seeds"]),
        size_scale=scale["size_scale"],
        epoch_scale=scale["epoch_scale"],
        max_workers=bench_workers(),
        cache_dir=bench_cache_dir(),
    )


def _schedule_in_paper_table(setting_name: str, schedule: str) -> bool:
    if setting_name == "RN50-IMAGENET" and schedule in ("none", "plateau"):
        return False
    if setting_name == "YOLO-VOC" and schedule == "plateau":
        return False
    return True


@lru_cache(maxsize=None)
def glue_store(schedules: tuple[str, ...] = COMPARED_SCHEDULES) -> tuple[RunStore, dict]:
    """Fine-tune the BERT proxy on proxy GLUE for every schedule (cached).

    Returns (records across epochs/budgets, {schedule: GlueResult}).
    """
    scale = bench_scale()
    store = RunStore()
    results = {}
    for schedule in schedules:
        if schedule in ("none", "plateau"):
            # Table 10 reports the bare AdamW row but not plateau; "none" is
            # the AdamW baseline (constant LR).
            if schedule == "plateau":
                continue
        config = GlueRunConfig(
            schedule=schedule,
            size_scale=max(0.2, scale["size_scale"] * 0.6),
            pretrain_steps=5,
        )
        result = run_glue_benchmark(config, max_workers=bench_workers(), cache_dir=bench_cache_dir())
        results[schedule] = result
        store.extend(glue_result_to_records(result))
    return store, results


@lru_cache(maxsize=None)
def combined_store() -> RunStore:
    """All settings' records combined — the input to Table 1 and Figure 1.

    Uses the cached per-setting sweeps, so when the per-table benchmarks have
    already run in the same pytest session this aggregation is free.
    """
    store = RunStore()
    for name in ("RN20-CIFAR10", "WRN-STL10", "VGG16-CIFAR100", "VAE-MNIST", "YOLO-VOC"):
        store.extend(setting_store(name))
    glue_records, _ = glue_store()
    store.extend(glue_records)
    return store
