"""Table 9: YOLO-VOC mAP with Adam and a 2-epoch warmup outside the budget."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table9_yolo_voc(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table9"))
    emit("table9_yolo_voc", result.as_text())
    store = artifact_store("table9")
    assert set(store.unique("optimizer")) == {"adam"}
    assert all(r.extra["warmup_steps"] > 0 for r in store)
    assert store[0].higher_is_better
