"""Table 9: YOLO-VOC mAP with Adam and a 2-epoch warmup outside the budget."""

from repro.experiments import format_setting_table

from bench_utils import emit, run_once
from helpers import setting_store


def test_table9_yolo_voc(benchmark):
    store = run_once(benchmark, lambda: setting_store("YOLO-VOC"))
    emit("table9_yolo_voc", format_setting_table(store, "YOLO-VOC"))
    assert set(store.unique("optimizer")) == {"adam"}
    assert all(r.extra["warmup_steps"] > 0 for r in store)
    assert store[0].higher_is_better
