"""Small utilities shared by the benchmark files (result persistence/printing)."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduced table/figure and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
