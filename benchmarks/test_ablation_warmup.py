"""Ablation: interaction of a linear warmup with each schedule (YOLO-VOC protocol)."""

from repro.experiments import RunConfig, run_single
from repro.utils.textplot import ascii_table

from bench_utils import emit, run_once
from helpers import bench_scale

SCHEDULES = ("rex", "linear", "cosine", "step")


def test_ablation_warmup_interaction(benchmark):
    """YOLO-VOC always uses a 2-epoch warmup; this ablation reports each schedule under it."""
    scale = bench_scale()

    def run():
        rows = []
        for schedule in SCHEDULES:
            record = run_single(
                RunConfig(
                    setting="YOLO-VOC",
                    schedule=schedule,
                    optimizer="adam",
                    budget_fraction=0.5,
                    size_scale=scale.size_scale,
                    epoch_scale=scale.epoch_scale,
                )
            )
            rows.append([schedule, f"{record.metric:.2f}", record.extra["warmup_steps"]])
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_warmup", ascii_table(rows, headers=["Schedule", "mAP @ 50% budget", "Warmup steps"]))
    assert all(row[2] > 0 for row in rows)
