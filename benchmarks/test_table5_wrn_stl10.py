"""Table 5: WRN-STL10 — every schedule x {SGDM, Adam} x budget grid."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table5_wrn_stl10(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table5"))
    emit("table5_wrn_stl10", result.as_text())
    store = artifact_store("table5")
    assert len(store) > 0
    assert "rex" in store.unique("schedule")
