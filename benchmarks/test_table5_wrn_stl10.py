"""Table 5: WRN-STL10 — every schedule x {SGDM, Adam} x budget grid."""

from repro.experiments import format_setting_table

from bench_utils import emit, run_once
from helpers import setting_store


def test_table5_wrn_stl10(benchmark):
    store = run_once(benchmark, lambda: setting_store("WRN-STL10"))
    emit("table5_wrn_stl10", format_setting_table(store, "WRN-STL10"))
    assert len(store) > 0
    assert "rex" in store.unique("schedule")
