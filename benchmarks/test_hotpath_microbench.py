"""Hot-path microbenchmark: step loops across dtype, planning and seed-batching.

Times the complete step (forward + backward + fused optimizer update) for the
two workload shapes that dominate the paper's reproduction — an MLP (pure
matmul) and the ResNet-20 CIFAR proxy (im2col conv + batchnorm) — along three
axes, appending every measurement to ``BENCH_hotpath.json`` so CI can archive
the perf trajectory:

* **dtype** — float32 vs float64 step loops (both planned, the production
  default);
* **graph planning** (:mod:`repro.nn.plan`) — planned vs unplanned float32
  loops, including ``tracemalloc`` steady-state allocation peaks: the planned
  loop reuses every activation/gradient/workspace buffer after the capture
  step, so its per-step allocation high-water collapses;
* **seed batching** — the S=5 stacked step loop against five serial per-seed
  loops (the ``--batch-seeds`` execution path), both planned.  The stacked
  (S·N)-batch conv/pool GEMM keeps the conv-heavy ResNet-20 regime at or
  above serial speed (it was a 0.85x regression when conv was chunked per
  seed); the floor is asserted at >= 1.0.
* **plan compiler passes** (:mod:`repro.nn.plan_passes`) — chain fusion on a
  tanh-GELU MLP dense in fusible elementwise chains (``mlp_plan_fused``),
  and buffer-lifetime aliasing on the conv-heavy ResNet-20 arena
  (``resnet20_plan_aliased``, whose ``arena_reduction`` — distinct storage
  vs per-position bytes — is a deterministic byte count, not a timing).

Scale follows ``REPRO_BENCH_SCALE`` (tiny/small/full) like the rest of the
harness; speedup floors are only asserted at >= small scale, where the loop
is long enough for the ratio to be stable.  Override the output path with
``REPRO_BENCH_HOTPATH_JSON``.  ``tools/bench_compare.py`` diffs two artifacts
and fails on step-loop regressions; CI runs it against the committed baseline
in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from contextlib import nullcontext
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.experiments.settings import get_setting
from repro.experiments.workloads import build_workload
from repro.models.mlp import MLP
from repro.nn.losses import cross_entropy
from repro.optim import build_optimizer

RESULTS_PATH = Path(os.environ.get("REPRO_BENCH_HOTPATH_JSON", "BENCH_hotpath.json"))

_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
_STEPS = {"tiny": 8, "small": 40, "full": 120}.get(_SCALE, 40)
_WARMUP = 3

#: asserted only when the loop is long enough for the ratio to be stable;
#: the acceptance target is 1.5x, the floor leaves headroom for CI noise
_MIN_SPEEDUP = 1.2 if _STEPS >= 40 else None

#: planned-vs-unplanned floors (asserted at >= small scale).  On the
#: conv-heavy loop planning is a robust ~1.3x (large workspaces, page-fault
#: heavy when re-allocated); on the tiny MLP the time saved on 64KB
#: allocations roughly cancels the tape-verification bookkeeping, so the
#: asserted wins there are "never meaningfully slower" plus the
#: steady-state allocation-peak collapse.
_MIN_PLAN_SPEEDUP_MLP = 0.9 if _STEPS >= 40 else None
_MIN_PLAN_SPEEDUP_CONV = 1.1 if _STEPS >= 40 else None

DTYPES = ("float64", "float32")


def _record(model_name: str, entry: dict) -> None:
    """Merge one model's measurements into the shared JSON artifact."""
    payload: dict = {"scale": _SCALE, "steps": _STEPS, "numpy": np.__version__, "results": {}}
    if RESULTS_PATH.exists():
        try:
            previous = json.loads(RESULTS_PATH.read_text())
            payload["results"] = previous.get("results", {})
        except (json.JSONDecodeError, OSError):
            pass
    payload["results"][model_name] = entry
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))


def _run_steps(model, optimizer, batches, loss_fn, steps, graph_plan):
    """Run ``steps`` train steps (optionally planned); returns the last loss."""
    loss = None
    for i in range(steps):
        batch = batches[i % len(batches)]
        with graph_plan.step() if graph_plan is not None else nullcontext():
            loss = loss_fn(model, batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    return loss


def _time_step_loop(build_fn, dtype: str, plan: bool = True) -> float:
    """Seconds for ``_STEPS`` train steps (forward+backward+optimizer)."""
    with nn.default_dtype(dtype):
        model, optimizer, batches, loss_fn = build_fn()
        graph_plan = nn.GraphPlan() if plan else None
        _run_steps(model, optimizer, batches, loss_fn, _WARMUP, graph_plan)
        start = time.perf_counter()
        loss = _run_steps(model, optimizer, batches, loss_fn, _STEPS, graph_plan)
        elapsed = time.perf_counter() - start
        assert np.isfinite(float(loss.data)), f"{dtype} step loop diverged"
        return elapsed


def _steady_state_alloc_peak(build_fn, dtype: str, plan: bool) -> int:
    """``tracemalloc`` high-water (bytes) of two steady-state training steps."""
    with nn.default_dtype(dtype):
        model, optimizer, batches, loss_fn = build_fn()
        graph_plan = nn.GraphPlan() if plan else None
        _run_steps(model, optimizer, batches, loss_fn, _WARMUP, graph_plan)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            _run_steps(model, optimizer, batches, loss_fn, 2, graph_plan)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return int(peak)


def _build_mlp():
    rng = np.random.default_rng(0)
    model = MLP(in_features=256, num_classes=10, hidden_sizes=(256, 256), seed=0)
    optimizer = build_optimizer("sgdm", model.parameters(), lr=0.01)
    batches = [
        (rng.standard_normal((64, 256)), rng.integers(0, 10, size=64)) for _ in range(4)
    ]
    loss_fn = lambda m, b: cross_entropy(m(nn.Tensor(b[0])), b[1])  # noqa: E731
    return model, optimizer, batches, loss_fn


def _build_resnet20():
    workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.5)
    optimizer = build_optimizer("sgdm", workload.model.parameters(), lr=0.05)
    batches = [batch for batch, _ in zip(workload.train_loader, range(4))]
    loss_fn = workload.task.compute_loss
    return workload.model, optimizer, batches, loss_fn


def _bench(model_name: str, build_fn) -> dict:
    timings = {dtype: _time_step_loop(build_fn, dtype) for dtype in DTYPES}
    speedup = timings["float64"] / timings["float32"]
    entry = {
        "steps": _STEPS,
        "plan": True,
        "float64_seconds": round(timings["float64"], 4),
        "float32_seconds": round(timings["float32"], 4),
        "float32_speedup": round(speedup, 3),
        "float64_steps_per_second": round(_STEPS / timings["float64"], 2),
        "float32_steps_per_second": round(_STEPS / timings["float32"], 2),
    }
    _record(model_name, entry)
    print(f"\n[hotpath] {model_name}: {entry}")
    return entry


def test_mlp_step_loop_float32_vs_float64():
    entry = _bench("mlp", _build_mlp)
    if _MIN_SPEEDUP is not None:
        assert entry["float32_speedup"] >= _MIN_SPEEDUP, (
            f"float32 MLP step loop regressed: {entry['float32_speedup']}x < {_MIN_SPEEDUP}x"
        )


def test_resnet20_step_loop_float32_vs_float64():
    entry = _bench("resnet20", _build_resnet20)
    if _MIN_SPEEDUP is not None:
        assert entry["float32_speedup"] >= _MIN_SPEEDUP, (
            f"float32 ResNet-20 step loop regressed: {entry['float32_speedup']}x < {_MIN_SPEEDUP}x"
        )


#: emulated bf16 pays a cast-on-store quantization per stored tensor on top
#: of the float32 compute, so its throughput is a *fraction* of float32's;
#: the floor catches the emulation overhead blowing up (e.g. an accidental
#: extra copy per store), not a speedup that does not exist
_MIN_BF16_RELATIVE_THROUGHPUT = 0.25 if _STEPS >= 40 else None


def test_mlp_step_loop_bfloat16_overhead():
    """Emulated bf16 step loop: bounded overhead relative to native float32."""
    float32_seconds = _time_step_loop(_build_mlp, "float32")
    bf16_seconds = _time_step_loop(_build_mlp, "bfloat16")
    entry = {
        "steps": _STEPS,
        "plan": True,
        "float32_seconds": round(float32_seconds, 4),
        "bfloat16_seconds": round(bf16_seconds, 4),
        # dimensionless, gated by bench_compare: bf16 steps/s over float32
        # steps/s (< 1.0 by construction — quantization is pure overhead)
        "bf16_relative_throughput": round(float32_seconds / bf16_seconds, 3),
        "bfloat16_steps_per_second": round(_STEPS / bf16_seconds, 2),
    }
    _record("mlp_bf16", entry)
    print(f"\n[hotpath] mlp_bf16: {entry}")
    if _MIN_BF16_RELATIVE_THROUGHPUT is not None:
        assert entry["bf16_relative_throughput"] >= _MIN_BF16_RELATIVE_THROUGHPUT, (
            f"emulated bf16 overhead blew up: {entry['bf16_relative_throughput']}x "
            f"of float32 throughput < {_MIN_BF16_RELATIVE_THROUGHPUT}x"
        )


# ---------------------------------------------------------------------------
# planned vs unplanned float32 step loops (+ steady-state allocation peaks)
# ---------------------------------------------------------------------------

def _bench_plan(entry_name: str, build_fn) -> dict:
    planned_seconds = _time_step_loop(build_fn, "float32", plan=True)
    unplanned_seconds = _time_step_loop(build_fn, "float32", plan=False)
    planned_peak = _steady_state_alloc_peak(build_fn, "float32", plan=True)
    unplanned_peak = _steady_state_alloc_peak(build_fn, "float32", plan=False)
    entry = {
        "steps": _STEPS,
        "planned_seconds": round(planned_seconds, 4),
        "unplanned_seconds": round(unplanned_seconds, 4),
        "plan_speedup": round(unplanned_seconds / planned_seconds, 3),
        "planned_steps_per_second": round(_STEPS / planned_seconds, 2),
        "unplanned_steps_per_second": round(_STEPS / unplanned_seconds, 2),
        "planned_step_alloc_peak_kb": round(planned_peak / 1024, 1),
        "unplanned_step_alloc_peak_kb": round(unplanned_peak / 1024, 1),
    }
    _record(entry_name, entry)
    print(f"\n[hotpath] {entry_name}: {entry}")
    return entry


def test_mlp_planned_vs_unplanned():
    entry = _bench_plan("mlp_plan", _build_mlp)
    assert entry["planned_step_alloc_peak_kb"] < entry["unplanned_step_alloc_peak_kb"], (
        "planning did not reduce the steady-state allocation peak"
    )
    if _MIN_PLAN_SPEEDUP_MLP is not None:
        assert entry["plan_speedup"] >= _MIN_PLAN_SPEEDUP_MLP, (
            f"planned MLP step loop regressed: {entry['plan_speedup']}x "
            f"< {_MIN_PLAN_SPEEDUP_MLP}x"
        )


def test_resnet20_planned_vs_unplanned():
    entry = _bench_plan("resnet20_plan", _build_resnet20)
    assert entry["planned_step_alloc_peak_kb"] < entry["unplanned_step_alloc_peak_kb"], (
        "planning did not reduce the steady-state allocation peak"
    )
    if _MIN_PLAN_SPEEDUP_CONV is not None:
        assert entry["plan_speedup"] >= _MIN_PLAN_SPEEDUP_CONV, (
            f"planned ResNet-20 step loop regressed: {entry['plan_speedup']}x "
            f"< {_MIN_PLAN_SPEEDUP_CONV}x"
        )


# ---------------------------------------------------------------------------
# plan compiler passes: chain fusion (elementwise MLP) and buffer aliasing
# ---------------------------------------------------------------------------

class _GeluMLP(nn.Module):
    """MLP with a tanh-GELU activation — dense in fusible elementwise chains."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        from repro.utils.seeding import spawn_rng

        rng = spawn_rng("gelu-mlp", seed=seed)
        self.fc1 = nn.Linear(256, 256, rng=rng)
        self.fc2 = nn.Linear(256, 256, rng=rng)
        self.head = nn.Linear(256, 10, rng=rng)

    @staticmethod
    def _gelu(h):
        return (h * 0.5) * ((h * 0.7978845608028654).tanh() + 1.0)

    def forward(self, x):
        h = self._gelu(self.fc1(x))
        h = self._gelu(self.fc2(h))
        return self.head(h)


def _build_gelu_mlp():
    rng = np.random.default_rng(0)
    model = _GeluMLP(seed=0)
    optimizer = build_optimizer("sgdm", model.parameters(), lr=0.01)
    batches = [
        (rng.standard_normal((64, 256)), rng.integers(0, 10, size=64)) for _ in range(4)
    ]
    loss_fn = lambda m, b: cross_entropy(m(nn.Tensor(b[0])), b[1])  # noqa: E731
    return model, optimizer, batches, loss_fn


def _time_step_loop_passes(build_fn, dtype: str, passes: str):
    """Like :func:`_time_step_loop`, planned with an explicit pass selection."""
    with nn.default_dtype(dtype):
        model, optimizer, batches, loss_fn = build_fn()
        graph_plan = nn.GraphPlan(passes=passes)
        _run_steps(model, optimizer, batches, loss_fn, _WARMUP, graph_plan)
        start = time.perf_counter()
        loss = _run_steps(model, optimizer, batches, loss_fn, _STEPS, graph_plan)
        elapsed = time.perf_counter() - start
        assert np.isfinite(float(loss.data)), f"{dtype}/{passes} step loop diverged"
        return elapsed, graph_plan


def test_mlp_plan_fused():
    """Chain fusion must engage on the GELU MLP and never meaningfully slow it."""
    fused_seconds, fused_plan = _time_step_loop_passes(
        _build_gelu_mlp, "float32", "alias,fuse,dce"
    )
    unfused_seconds, _ = _time_step_loop_passes(_build_gelu_mlp, "float32", "none")
    entry = {
        "steps": _STEPS,
        "passes": "alias,fuse,dce",
        "fused_seconds": round(fused_seconds, 4),
        "unfused_seconds": round(unfused_seconds, 4),
        "fuse_speedup": round(unfused_seconds / fused_seconds, 3),
        "fused_chains": fused_plan.fused_chains,
        "dce_dropped": fused_plan.dce_dropped,
    }
    _record("mlp_plan_fused", entry)
    print(f"\n[hotpath] mlp_plan_fused: {entry}")
    assert fused_plan.fused_chains >= 1, "fusion pass found no chains in the GELU MLP"
    assert fused_plan.diverged_steps == 0


def test_resnet20_plan_aliased():
    """Buffer aliasing must shrink the conv arena's distinct storage."""
    planned_seconds, plan = _time_step_loop_passes(
        _build_resnet20, "float32", "alias,fuse,dce"
    )
    raw_kb = plan.arena_nbytes_raw() / 1024
    arena_kb = plan.arena_nbytes() / 1024
    entry = {
        "steps": _STEPS,
        "passes": "alias,fuse,dce",
        "planned_seconds": round(planned_seconds, 4),
        "arena_kb": round(arena_kb, 1),
        "arena_raw_kb": round(raw_kb, 1),
        # deterministic byte-count ratio (not a timing): gated by bench_compare
        "arena_reduction": round(raw_kb / arena_kb, 3),
        "aliased_positions": plan.aliased_positions,
    }
    _record("resnet20_plan_aliased", entry)
    print(f"\n[hotpath] resnet20_plan_aliased: {entry}")
    assert plan.aliased_positions > 0, "alias pass shared no arena positions"
    assert arena_kb < raw_kb
    assert plan.diverged_steps == 0


# ---------------------------------------------------------------------------
# seed-batched (vmap-style) step loops: 5 serial per-seed loops vs one stacked
# ---------------------------------------------------------------------------

NUM_SEEDS = 5

#: asserted only at >= small scale; the locally recorded value is ~2.5-3x for
#: the interpreter-bound tiny MLP, and the floor leaves headroom for CI noise
_MIN_BATCHED_SPEEDUP = 1.5 if _STEPS >= 40 else None

#: the conv regime must never fall below serial now that the batched conv is
#: one stacked (S·N) GEMM instead of a per-seed python loop
_MIN_CONV_BATCHED_SPEEDUP = 1.0 if _STEPS >= 40 else None


def _mlp_seed_workloads():
    """The tiny interpreter-bound workload the seed axis is built for."""
    from repro.nn.losses import cross_entropy

    rng = np.random.default_rng(0)
    batches = [
        (rng.standard_normal((16, 64)), rng.integers(0, 10, size=16)) for _ in range(4)
    ]

    def build(seed: int):
        return MLP(in_features=64, num_classes=10, hidden_sizes=(32, 32), seed=seed)

    def loss_fn(model, x, labels):
        return cross_entropy(model(x), labels)

    return build, batches, loss_fn


def _resnet20_seed_workloads():
    """The conv-heavy regime: one stacked GEMM across all seeds' images."""
    from repro.nn.losses import cross_entropy

    def build(seed: int):
        return build_workload(get_setting("RN20-CIFAR10"), seed=seed, size_scale=0.12).model

    workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.12)
    batches = [batch for batch, _ in zip(workload.train_loader, range(2))]

    def loss_fn(model, x, labels):
        return cross_entropy(model(x), labels)

    return build, batches, loss_fn


def _time_seed_loops(build_fn, batches, loss_fn) -> tuple[float, float]:
    """(serial_seconds, batched_seconds) for ``_STEPS`` S-seed training steps.

    Both paths run planned — the production default — so the comparison is
    purely serial-vs-stacked execution.
    """
    from repro import nn as nn_mod
    from repro.optim import build_optimizer as build_opt

    # serial: one full python pass per seed per step, one plan per seed
    models = [build_fn(seed) for seed in range(NUM_SEEDS)]
    optimizers = [build_opt("sgdm", m.parameters(), lr=0.01) for m in models]
    plans = [nn_mod.GraphPlan() for _ in range(NUM_SEEDS)]
    start = 0.0
    for i in range(_WARMUP + _STEPS):
        if i == _WARMUP:
            start = time.perf_counter()
        raw_x, labels = batches[i % len(batches)]
        for model, optimizer, seed_plan in zip(models, optimizers, plans):
            with seed_plan.step():
                loss = loss_fn(model, nn_mod.Tensor(raw_x), labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
    serial_seconds = time.perf_counter() - start

    # batched: one stacked pass covers all seeds
    stacked = nn_mod.stack_modules([build_fn(seed) for seed in range(NUM_SEEDS)])
    optimizer = build_opt("sgdm", stacked.parameters(), lr=0.01)
    graph_plan = nn_mod.GraphPlan()
    ones = np.ones(NUM_SEEDS)
    stacked_batches = [
        (
            np.ascontiguousarray(np.broadcast_to(x, (NUM_SEEDS,) + x.shape)),
            np.ascontiguousarray(np.broadcast_to(y, (NUM_SEEDS,) + y.shape)),
        )
        for x, y in batches
    ]
    for i in range(_WARMUP + _STEPS):
        if i == _WARMUP:
            start = time.perf_counter()
        raw_x, labels = stacked_batches[i % len(stacked_batches)]
        with graph_plan.step():
            loss = loss_fn(stacked, nn_mod.seed_stacked(raw_x), labels)
            optimizer.zero_grad()
            loss.backward(ones)
            optimizer.step()
    batched_seconds = time.perf_counter() - start
    assert np.all(np.isfinite(loss.data)), "seed-batched step loop diverged"
    return serial_seconds, batched_seconds


def _bench_seed_batched(entry_name: str, workloads_fn) -> dict:
    serial_seconds, batched_seconds = _time_seed_loops(*workloads_fn())
    entry = {
        "steps": _STEPS,
        "plan": True,
        "num_seeds": NUM_SEEDS,
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "batched_speedup": round(serial_seconds / batched_seconds, 3),
    }
    _record(entry_name, entry)
    print(f"\n[hotpath] {entry_name}: {entry}")
    return entry


def test_mlp_seed_batched_vs_serial_loop():
    """S=5 stacked MLP training must beat five serial per-seed loops."""
    entry = _bench_seed_batched("mlp_seed_batched", _mlp_seed_workloads)
    if _MIN_BATCHED_SPEEDUP is not None:
        assert entry["batched_speedup"] >= _MIN_BATCHED_SPEEDUP, (
            f"seed-batched MLP loop regressed: {entry['batched_speedup']}x "
            f"< {_MIN_BATCHED_SPEEDUP}x"
        )


def test_resnet20_seed_batched_vs_serial_loop():
    """Conv regime: the stacked (S·N) GEMM must be at least break-even."""
    entry = _bench_seed_batched("resnet20_seed_batched", _resnet20_seed_workloads)
    if _MIN_CONV_BATCHED_SPEEDUP is not None:
        assert entry["batched_speedup"] >= _MIN_CONV_BATCHED_SPEEDUP, (
            f"seed-batched ResNet-20 loop regressed below serial: "
            f"{entry['batched_speedup']}x < {_MIN_CONV_BATCHED_SPEEDUP}x"
        )


def test_artifact_written_and_well_formed():
    """Runs last in file order: every bench entry must be in the artifact."""
    if not RESULTS_PATH.exists():
        pytest.skip("timing tests did not run")
    payload = json.loads(RESULTS_PATH.read_text())
    for model_name in ("mlp", "resnet20"):
        entry = payload["results"].get(model_name)
        assert entry is not None, f"missing {model_name} entry in {RESULTS_PATH}"
        assert entry["float32_seconds"] > 0 and entry["float64_seconds"] > 0
    bf16 = payload["results"].get("mlp_bf16")
    assert bf16 is not None, f"missing mlp_bf16 entry in {RESULTS_PATH}"
    assert bf16["bfloat16_seconds"] > 0 and bf16["bf16_relative_throughput"] > 0
    for entry_name in ("mlp_plan", "resnet20_plan"):
        entry = payload["results"].get(entry_name)
        assert entry is not None, f"missing {entry_name} entry in {RESULTS_PATH}"
        assert entry["planned_seconds"] > 0 and entry["unplanned_seconds"] > 0
        assert entry["planned_step_alloc_peak_kb"] > 0
    for entry_name in ("mlp_seed_batched", "resnet20_seed_batched"):
        entry = payload["results"].get(entry_name)
        assert entry is not None, f"missing {entry_name} entry in {RESULTS_PATH}"
        assert entry["num_seeds"] == NUM_SEEDS
        assert entry["serial_seconds"] > 0 and entry["batched_seconds"] > 0
    fused = payload["results"].get("mlp_plan_fused")
    assert fused is not None, f"missing mlp_plan_fused entry in {RESULTS_PATH}"
    assert fused["fused_chains"] >= 1 and fused["fused_seconds"] > 0
    aliased = payload["results"].get("resnet20_plan_aliased")
    assert aliased is not None, f"missing resnet20_plan_aliased entry in {RESULTS_PATH}"
    assert aliased["aliased_positions"] > 0
    assert aliased["arena_reduction"] > 1.0
