"""Hot-path microbenchmark: full training-step loops in float32 vs float64.

Times the complete step (forward + backward + fused optimizer update) for the
two workload shapes that dominate the paper's reproduction — an MLP (pure
matmul) and the ResNet-20 CIFAR proxy (im2col conv + batchnorm) — in both
dtypes, and appends the measurements to ``BENCH_hotpath.json`` so CI can
archive the perf trajectory.

Scale follows ``REPRO_BENCH_SCALE`` (tiny/small/full) like the rest of the
harness; the speedup floor is only asserted at >= small scale, where the loop
is long enough for the ratio to be stable.  Override the output path with
``REPRO_BENCH_HOTPATH_JSON``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.experiments.settings import get_setting
from repro.experiments.workloads import build_workload
from repro.models.mlp import MLP
from repro.nn.losses import cross_entropy
from repro.optim import build_optimizer

RESULTS_PATH = Path(os.environ.get("REPRO_BENCH_HOTPATH_JSON", "BENCH_hotpath.json"))

_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
_STEPS = {"tiny": 8, "small": 40, "full": 120}.get(_SCALE, 40)
_WARMUP = 3

#: asserted only when the loop is long enough for the ratio to be stable;
#: the acceptance target is 1.5x, the floor leaves headroom for CI noise
_MIN_SPEEDUP = 1.2 if _STEPS >= 40 else None

DTYPES = ("float64", "float32")


def _record(model_name: str, entry: dict) -> None:
    """Merge one model's measurements into the shared JSON artifact."""
    payload: dict = {"scale": _SCALE, "steps": _STEPS, "numpy": np.__version__, "results": {}}
    if RESULTS_PATH.exists():
        try:
            previous = json.loads(RESULTS_PATH.read_text())
            payload["results"] = previous.get("results", {})
        except (json.JSONDecodeError, OSError):
            pass
    payload["results"][model_name] = entry
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))


def _time_step_loop(build_fn, dtype: str) -> float:
    """Seconds for ``_STEPS`` train steps (forward+backward+optimizer)."""
    with nn.default_dtype(dtype):
        model, optimizer, batches, loss_fn = build_fn()
        start = 0.0
        for i in range(_WARMUP + _STEPS):
            if i == _WARMUP:
                start = time.perf_counter()
            batch = batches[i % len(batches)]
            loss = loss_fn(model, batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.isfinite(float(loss.data)), f"{dtype} step loop diverged"
        return time.perf_counter() - start


def _build_mlp():
    rng = np.random.default_rng(0)
    model = MLP(in_features=256, num_classes=10, hidden_sizes=(256, 256), seed=0)
    optimizer = build_optimizer("sgdm", model.parameters(), lr=0.01)
    batches = [
        (rng.standard_normal((64, 256)), rng.integers(0, 10, size=64)) for _ in range(4)
    ]
    loss_fn = lambda m, b: cross_entropy(m(nn.Tensor(b[0])), b[1])  # noqa: E731
    return model, optimizer, batches, loss_fn


def _build_resnet20():
    workload = build_workload(get_setting("RN20-CIFAR10"), seed=0, size_scale=0.5)
    optimizer = build_optimizer("sgdm", workload.model.parameters(), lr=0.05)
    batches = [batch for batch, _ in zip(workload.train_loader, range(4))]
    loss_fn = workload.task.compute_loss
    return workload.model, optimizer, batches, loss_fn


def _bench(model_name: str, build_fn) -> dict:
    timings = {dtype: _time_step_loop(build_fn, dtype) for dtype in DTYPES}
    speedup = timings["float64"] / timings["float32"]
    entry = {
        "steps": _STEPS,
        "float64_seconds": round(timings["float64"], 4),
        "float32_seconds": round(timings["float32"], 4),
        "float32_speedup": round(speedup, 3),
        "float64_steps_per_second": round(_STEPS / timings["float64"], 2),
        "float32_steps_per_second": round(_STEPS / timings["float32"], 2),
    }
    _record(model_name, entry)
    print(f"\n[hotpath] {model_name}: {entry}")
    return entry


def test_mlp_step_loop_float32_vs_float64():
    entry = _bench("mlp", _build_mlp)
    if _MIN_SPEEDUP is not None:
        assert entry["float32_speedup"] >= _MIN_SPEEDUP, (
            f"float32 MLP step loop regressed: {entry['float32_speedup']}x < {_MIN_SPEEDUP}x"
        )


def test_resnet20_step_loop_float32_vs_float64():
    entry = _bench("resnet20", _build_resnet20)
    if _MIN_SPEEDUP is not None:
        assert entry["float32_speedup"] >= _MIN_SPEEDUP, (
            f"float32 ResNet-20 step loop regressed: {entry['float32_speedup']}x < {_MIN_SPEEDUP}x"
        )


def test_artifact_written_and_well_formed():
    """Runs last in file order: both model entries must be in the artifact."""
    if not RESULTS_PATH.exists():
        pytest.skip("timing tests did not run")
    payload = json.loads(RESULTS_PATH.read_text())
    for model_name in ("mlp", "resnet20"):
        entry = payload["results"].get(model_name)
        assert entry is not None, f"missing {model_name} entry in {RESULTS_PATH}"
        assert entry["float32_seconds"] > 0 and entry["float64_seconds"] > 0
