"""Table 1: % of Top-1 / Top-3 finishes per schedule, split by budget regime."""

from repro.experiments import format_top_finish_table, top_finish_table

from bench_utils import emit, run_once
from helpers import combined_store


def test_table1_top_finishes(benchmark):
    store = run_once(benchmark, combined_store)
    table = top_finish_table(store)
    emit("table1_top_finishes", format_top_finish_table(table))
    # Structural checks: plateau is folded into step, every schedule has all regimes.
    assert "plateau" not in table
    assert {"low_top1", "high_top1", "overall_top3"} <= set(next(iter(table.values())))
    # Ties share an average rank (>1), so the Top-1 percentages sum to at most 100%.
    total_top1 = sum(entry["overall_top1"] for entry in table.values())
    assert 0.0 < total_top1 <= 100.0 + 1e-6
