"""Table 1: % of Top-1 / Top-3 finishes per schedule, split by budget regime."""

from bench_utils import emit, run_once
from helpers import artifact_result


def test_table1_top_finishes(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table1"))
    emit("table1_top_finishes", result.as_text())
    (table,) = result.tables
    # Structural checks: plateau is folded into step, every regime is a column.
    assert all("Plateau" not in row[0] for row in table.rows)
    assert {"Low Top-1", "High Top-3", "Overall Top-1"} <= set(table.headers)
    # Ties share an average rank (>1), so the Top-1 percentages sum to at most 100%.
    overall_top1 = table.headers.index("Overall Top-1")
    total_top1 = sum(float(row[overall_top1].rstrip("%")) for row in table.rows)
    assert 0.0 < total_top1 <= 100.0 + 1e-6
    assert result.reproduced.get("rex/overall_top1") is not None
