"""Micro-benchmark: per-step overhead of each schedule.

The paper claims REX "requires no added computation, storage, or
hyperparameters"; this benchmark measures the per-step cost of every schedule
driving a real optimizer to confirm that schedule choice is computationally
free relative to a training step.
"""

import numpy as np
import pytest

from repro.nn.modules.base import Parameter
from repro.optim import SGD
from repro.schedules import PAPER_SCHEDULES, build_schedule


@pytest.mark.parametrize("schedule_name", [s for s in PAPER_SCHEDULES if s != "plateau"])
def test_schedule_step_overhead(benchmark, schedule_name):
    optimizer = SGD([Parameter(np.zeros(10))], lr=0.1, momentum=0.9)
    schedule = build_schedule(schedule_name, optimizer, total_steps=10_000)

    def step():
        schedule.step()

    benchmark(step)
