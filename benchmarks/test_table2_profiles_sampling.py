"""Table 2: profile x sampling-rate error grid on RN20-CIFAR10-SGDM (and RN38)."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table2_profiles_vs_sampling(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table2"))
    emit("table2_profiles_sampling", result.as_text())
    store = artifact_store("table2")
    # 2 settings x (3 profiles x 7 sampling rates x 3 budgets)
    assert len(store) == 2 * 3 * 7 * 3
    assert [t.title for t in result.tables] == ["RN20-CIFAR10", "RN38-CIFAR10"]
    for table in result.tables:
        assert len(table.rows) == 7  # one row per paper sampling rate
