"""Table 2: profile x sampling-rate error grid on RN20-CIFAR10-SGDM (and RN38)."""

from repro.analysis import ProfileSamplingConfig, run_profile_sampling_grid, table2_rows
from repro.utils.textplot import ascii_table

from bench_utils import emit, run_once
from helpers import bench_scale


def _grid(setting: str):
    scale = bench_scale()
    config = ProfileSamplingConfig(
        setting=setting,
        budget_fractions=(0.05, 0.25, 1.0),
        size_scale=scale["size_scale"],
        epoch_scale=scale["epoch_scale"],
    )
    return config, run_profile_sampling_grid(config)


def test_table2_profiles_vs_sampling_rn20(benchmark):
    config, store = run_once(benchmark, lambda: _grid("RN20-CIFAR10"))
    rows, headers = table2_rows(store, config.budget_fractions)
    emit("table2_rn20_profiles_sampling", ascii_table(rows, headers))
    # 3 profiles x 7 sampling rates x 3 budgets
    assert len(store) == 3 * 7 * 3
    assert len(rows) == 7


def test_table2_profiles_vs_sampling_rn38(benchmark):
    config, store = run_once(benchmark, lambda: _grid("RN38-CIFAR10"))
    rows, headers = table2_rows(store, config.budget_fractions)
    emit("table2_rn38_profiles_sampling", ascii_table(rows, headers))
    assert len(store) == 3 * 7 * 3
