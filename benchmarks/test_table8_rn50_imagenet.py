"""Table 8: RN50-ImageNet at 1% and 5% budgets only (as in the paper)."""

from repro.experiments import format_setting_table

from bench_utils import emit, run_once
from helpers import setting_store


def test_table8_rn50_imagenet(benchmark):
    store = run_once(benchmark, lambda: setting_store("RN50-IMAGENET"))
    emit("table8_rn50_imagenet", format_setting_table(store, "RN50-IMAGENET"))
    assert sorted(store.unique("budget_fraction")) == [0.01, 0.05]
