"""Table 8: RN50-ImageNet at 1% and 5% budgets only (as in the paper)."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table8_rn50_imagenet(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table8"))
    emit("table8_rn50_imagenet", result.as_text())
    assert sorted(artifact_store("table8").unique("budget_fraction")) == [0.01, 0.05]
