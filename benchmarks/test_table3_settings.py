"""Table 3: summary of the experimental settings (paper vs proxy scale)."""

from bench_utils import emit, run_once
from helpers import artifact_result


def test_table3_settings(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table3"))
    emit("table3_settings", result.as_text())
    (table,) = result.tables
    assert len(table.rows) == 7
    # protocol metadata must agree with the paper exactly (drift 0)
    assert result.reproduced["RN20-CIFAR10/paper_max_epochs"] == 300.0
