"""Table 3: summary of the experimental settings (paper vs proxy scale)."""

from repro.experiments import PAPER_SETTINGS, get_setting
from repro.utils.textplot import ascii_table

from bench_utils import emit, run_once


def test_table3_settings(benchmark):
    def build():
        rows = []
        for name in PAPER_SETTINGS:
            s = get_setting(name)
            rows.append([s.name, s.model, s.dataset, s.paper_max_epochs, s.max_epochs, ",".join(s.optimizers)])
        return rows

    rows = run_once(benchmark, build)
    emit(
        "table3_settings",
        ascii_table(
            rows,
            headers=["Setting", "Proxy model", "Proxy dataset", "Paper max epochs", "Proxy max epochs", "Optimizers"],
        ),
    )
    assert len(rows) == 7
