"""Benchmark-suite configuration.

The benchmarks double as the paper-reproduction harness: each one regenerates
a table or figure and prints it, so ``pytest benchmarks/ --benchmark-only -s``
shows the reproduced rows next to the timing numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling helpers module importable regardless of rootdir settings.
# Appended (not prepended) so this directory can never shadow same-named
# modules from other suites when tests/ and benchmarks/ run together.
_here = str(Path(__file__).parent)
if _here not in sys.path:
    sys.path.append(_here)
