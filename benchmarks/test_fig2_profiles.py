"""Figure 2: learning-rate profiles under different sampling rates (schedule-space only)."""

from repro.analysis import figure2_data
from repro.utils.textplot import ascii_plot

from bench_utils import emit, run_once


def test_fig2_profiles(benchmark):
    data = run_once(benchmark, lambda: figure2_data(total_steps=200))
    panels = []
    for panel_name, curves in data.items():
        subset = {k: v for k, v in list(curves.items())[:4]}
        panels.append(ascii_plot(subset, title=f"Figure 2 panel: {panel_name}", ylabel="lr multiplier"))
    emit("fig2_profiles", "\n\n".join(panels))

    assert set(data) == {"step_profile", "linear_profile", "rex_profile", "usual_schedules"}
    for curves in data.values():
        for curve in curves.values():
            assert len(curve) == 200
