"""Figure 2: learning-rate profiles under different sampling rates (schedule-space only)."""

from repro.analysis import figure2_data
from repro.utils.textplot import ascii_plot

from bench_utils import emit, run_once
from helpers import artifact_result


def test_fig2_profiles(benchmark):
    result = run_once(benchmark, lambda: artifact_result("fig2"))
    # ASCII plots stay the human-friendly view; the registry's tables are the data.
    data = figure2_data(total_steps=200)
    panels = []
    for panel_name, curves in data.items():
        subset = {k: v for k, v in list(curves.items())[:4]}
        panels.append(ascii_plot(subset, title=f"Figure 2 panel: {panel_name}", ylabel="lr multiplier"))
    emit("fig2_profiles", "\n\n".join(panels) + "\n\n" + result.as_text())

    assert {t.title for t in result.tables} == {"step_profile", "linear_profile", "rex_profile", "usual_schedules"}
    # the REX profile at 50% progress is analytic: rho(1/2) = 2/3
    assert abs(result.reproduced["rex_profile/every_iteration@50%"] - 2 / 3) < 1e-6
