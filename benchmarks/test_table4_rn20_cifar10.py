"""Table 4: RN20-CIFAR10 — every schedule x {SGDM, Adam} x budget grid."""

from repro.experiments import format_setting_table

from bench_utils import emit, run_once
from helpers import setting_store


def test_table4_rn20_cifar10(benchmark):
    store = run_once(benchmark, lambda: setting_store("RN20-CIFAR10"))
    emit("table4_rn20_cifar10", format_setting_table(store, "RN20-CIFAR10"))
    assert len(store) > 0
    assert set(store.unique("optimizer")) == {"sgdm", "adam"}
