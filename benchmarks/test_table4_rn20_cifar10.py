"""Table 4: RN20-CIFAR10 — every schedule x {SGDM, Adam} x budget grid."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table4_rn20_cifar10(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table4"))
    emit("table4_rn20_cifar10", result.as_text())
    store = artifact_store("table4")
    assert len(store) > 0
    assert set(store.unique("optimizer")) == {"sgdm", "adam"}
