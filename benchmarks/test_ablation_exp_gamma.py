"""Ablation: exponential-decay gamma sweep (the paper fixes gamma = -3)."""

from repro.experiments import RunConfig, run_single
from repro.utils.textplot import ascii_table

from bench_utils import emit, run_once
from helpers import bench_scale

GAMMAS = (-1.0, -3.0, -6.0, -9.0)


def test_ablation_exponential_gamma(benchmark):
    scale = bench_scale()

    def run():
        rows = []
        for gamma in GAMMAS:
            row = [f"gamma={gamma:g}"]
            for budget in (0.05, 0.5):
                record = run_single(
                    RunConfig(
                        setting="RN20-CIFAR10",
                        schedule="exponential",
                        optimizer="sgdm",
                        budget_fraction=budget,
                        schedule_kwargs={"gamma": gamma},
                        size_scale=scale.size_scale,
                        epoch_scale=scale.epoch_scale,
                    )
                )
                row.append(f"{record.metric:.2f}")
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_exp_gamma", ascii_table(rows, headers=["Exp decay", "5% budget", "50% budget"]))
    assert len(rows) == len(GAMMAS)
