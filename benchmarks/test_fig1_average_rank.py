"""Figure 1: average rank of each schedule against the training budget (SGDM and Adam)."""

from repro.experiments import average_rank_by_budget, format_rank_table

from bench_utils import emit, run_once
from helpers import combined_store


def test_fig1_average_rank(benchmark):
    store = run_once(benchmark, combined_store)
    sections = []
    for optimizer in ("sgdm", "adam", "adamw"):
        sub = store.filter(optimizer=optimizer)
        if len(sub) == 0:
            continue
        ranks = average_rank_by_budget(sub, merge_plateau_into_step=True)
        sections.append(f"-- {optimizer.upper()} --\n" + format_rank_table(ranks))
    emit("fig1_average_rank", "\n\n".join(sections))

    sgdm_ranks = average_rank_by_budget(store.filter(optimizer="sgdm"), merge_plateau_into_step=True)
    assert "rex" in sgdm_ranks
    # each schedule is ranked at every budget it was run on
    assert len(sgdm_ranks["rex"]) >= 4
