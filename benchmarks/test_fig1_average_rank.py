"""Figure 1: average rank of each schedule against the training budget (SGDM and Adam)."""

from bench_utils import emit, run_once
from helpers import artifact_result


def test_fig1_average_rank(benchmark):
    result = run_once(benchmark, lambda: artifact_result("fig1"))
    emit("fig1_average_rank", result.as_text())
    by_title = {table.title: table for table in result.tables}
    assert "SGDM" in by_title and "ADAM" in by_title
    sgdm = by_title["SGDM"]
    rex_rows = [row for row in sgdm.rows if row[0] == "+ REX"]
    assert len(rex_rows) == 1
    # each schedule is ranked at every budget it was run on
    assert sum(1 for cell in rex_rows[0][1:] if cell != "—") >= 4
