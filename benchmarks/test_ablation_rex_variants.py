"""Ablation: generalised REX denominators (alpha/beta) vs the paper's 1/2-1/2 profile."""

from repro.experiments import RunConfig, run_single
from repro.utils.textplot import ascii_table

from bench_utils import emit, run_once
from helpers import bench_scale

VARIANTS = {
    "rex (paper, a=b=0.5)": {"alpha": 0.5, "beta": 0.5},
    "rex a=0.25 b=0.75": {"alpha": 0.25, "beta": 0.75},
    "rex a=0.75 b=0.25": {"alpha": 0.75, "beta": 0.25},
    "rex a=1.0 b=0.0 (linear)": {"alpha": 1.0, "beta": 0.0},
}


def test_ablation_rex_variants(benchmark):
    scale = bench_scale()

    def run():
        rows = []
        for label, kwargs in VARIANTS.items():
            row = [label]
            for budget in (0.05, 0.5):
                record = run_single(
                    RunConfig(
                        setting="RN20-CIFAR10",
                        schedule="rex",
                        optimizer="sgdm",
                        budget_fraction=budget,
                        schedule_kwargs=kwargs,
                        size_scale=scale.size_scale,
                        epoch_scale=scale.epoch_scale,
                    )
                )
                row.append(f"{record.metric:.2f}")
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    emit("ablation_rex_variants", ascii_table(rows, headers=["Variant", "5% budget", "50% budget"]))
    assert len(rows) == len(VARIANTS)
