"""Table 7: VAE-MNIST generalization loss (negative ELBO)."""

from repro.experiments import format_setting_table

from bench_utils import emit, run_once
from helpers import setting_store


def test_table7_vae_mnist(benchmark):
    store = run_once(benchmark, lambda: setting_store("VAE-MNIST"))
    emit("table7_vae_mnist", format_setting_table(store, "VAE-MNIST"))
    assert len(store) > 0
    assert store[0].metric_name == "elbo"
