"""Table 7: VAE-MNIST generalization loss (negative ELBO)."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table7_vae_mnist(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table7"))
    emit("table7_vae_mnist", result.as_text())
    store = artifact_store("table7")
    assert len(store) > 0
    assert store[0].metric_name == "elbo"
