"""Table 6: VGG16-CIFAR100 — every schedule x {SGDM, Adam} x budget grid."""

from repro.experiments import format_setting_table

from bench_utils import emit, run_once
from helpers import setting_store


def test_table6_vgg16_cifar100(benchmark):
    store = run_once(benchmark, lambda: setting_store("VGG16-CIFAR100"))
    emit("table6_vgg16_cifar100", format_setting_table(store, "VGG16-CIFAR100"))
    assert len(store) > 0
