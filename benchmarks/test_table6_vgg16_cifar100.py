"""Table 6: VGG16-CIFAR100 — every schedule x {SGDM, Adam} x budget grid."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table6_vgg16_cifar100(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table6"))
    emit("table6_vgg16_cifar100", result.as_text())
    assert len(artifact_store("table6")) > 0
