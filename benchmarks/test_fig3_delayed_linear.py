"""Figure 3: REX vs linear vs delayed-linear schedules across budgets (2 panels per optimizer)."""

from repro.analysis import DelayedLinearStudyConfig, delayed_linear_series, run_delayed_linear_study
from repro.analysis.delayed_linear import step_100pct_reference
from repro.utils.textplot import series_to_csv

from bench_utils import emit, run_once
from helpers import bench_scale

PANELS = (("VGG16-CIFAR100", "sgdm"), ("RN38-CIFAR100", "adam"))


def test_fig3_delayed_linear(benchmark):
    scale = bench_scale()

    def run():
        outputs = {}
        for setting, optimizer in PANELS:
            config = DelayedLinearStudyConfig(
                setting=setting,
                optimizer=optimizer,
                delay_fractions=(0.25, 0.5, 0.75),
                budget_fractions=(0.05, 0.25, 1.0),
                size_scale=scale["size_scale"],
                epoch_scale=scale["epoch_scale"],
            )
            outputs[(setting, optimizer)] = run_delayed_linear_study(config)
        return outputs

    outputs = run_once(benchmark, run)
    sections = []
    for (setting, optimizer), store in outputs.items():
        series = delayed_linear_series(store)
        budgets = sorted(next(iter(series.values())))
        csv = series_to_csv(
            {name: [by_budget[b] for b in budgets] for name, by_budget in series.items()},
            x=budgets,
            x_name="budget_fraction",
        )
        ref = step_100pct_reference(store)
        sections.append(f"-- {setting} / {optimizer} (step@100% reference = {ref:.2f}) --\n{csv}")
    emit("fig3_delayed_linear", "\n\n".join(sections))

    for store in outputs.values():
        schedules = set(store.unique("schedule"))
        assert {"rex", "linear", "step", "linear_delayed_50"} <= schedules
