"""Figure 3: REX vs linear vs delayed-linear schedules across budgets (2 panels)."""

from bench_utils import emit, run_once
from helpers import artifact_result


def test_fig3_delayed_linear(benchmark):
    result = run_once(benchmark, lambda: artifact_result("fig3"))
    emit("fig3_delayed_linear", result.as_text())
    assert len(result.tables) == 2
    for table in result.tables:
        schedules = {row[0] for row in table.rows}
        assert {"rex", "linear", "step", "linear_delayed_50"} <= schedules
        assert "step@100% reference" in table.title
