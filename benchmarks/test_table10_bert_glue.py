"""Table 10: mean GLUE score of the BERT proxy after 1/2/3 fine-tuning epochs."""

from repro.utils.textplot import ascii_table

from bench_utils import emit, run_once
from helpers import glue_store


def test_table10_bert_glue_mean_scores(benchmark):
    _, results = run_once(benchmark, glue_store)
    rows = []
    for schedule, result in results.items():
        means = result.mean_scores()
        rows.append([schedule, "/".join(f"{m:.1f}" for m in means)])
    emit("table10_bert_glue", ascii_table(rows, headers=["Method", "Score (1/2/3 epochs)"]))
    assert "rex" in results
    assert all(len(r.mean_scores()) == 3 for r in results.values())
