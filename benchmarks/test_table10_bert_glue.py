"""Table 10: mean GLUE score of the BERT proxy after 1/2/3 fine-tuning epochs."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_table10_bert_glue_mean_scores(benchmark):
    result = run_once(benchmark, lambda: artifact_result("table10"))
    emit("table10_bert_glue", result.as_text())
    store = artifact_store("table10")
    assert "rex" in store.unique("schedule")
    assert all(len(r.extra["scores"]) == 3 for r in store)
    assert result.reproduced.get("rex@3ep") is not None
