"""Figure 4: final error against the initial learning rate for each schedule."""

from repro.analysis import LRSensitivityConfig, lr_sensitivity_series, run_lr_sensitivity
from repro.utils.textplot import series_to_csv

from bench_utils import emit, run_once
from helpers import bench_scale

PANELS = (("RN20-CIFAR10", 0.05), ("RN38-CIFAR100", 0.25))


def test_fig4_lr_sensitivity(benchmark):
    scale = bench_scale()

    def run():
        outputs = {}
        for setting, budget in PANELS:
            config = LRSensitivityConfig(
                setting=setting,
                budget_fraction=budget,
                schedules=("rex", "linear", "cosine", "step", "exponential", "onecycle"),
                lr_steps=2,
                size_scale=scale["size_scale"],
                epoch_scale=scale["epoch_scale"],
            )
            outputs[(setting, budget)] = run_lr_sensitivity(config)
        return outputs

    outputs = run_once(benchmark, run)
    sections = []
    for (setting, budget), store in outputs.items():
        series = lr_sensitivity_series(store)
        lrs = sorted(next(iter(series.values())))
        csv = series_to_csv(
            {name: [by_lr[lr] for lr in lrs] for name, by_lr in series.items()},
            x=lrs,
            x_name="learning_rate",
        )
        sections.append(f"-- {setting} @ {budget * 100:g}% budget --\n{csv}")
    emit("fig4_lr_sensitivity", "\n\n".join(sections))

    for store in outputs.values():
        assert len(store.unique("learning_rate")) == 5  # multiples of 3 around the default
        assert len(store.unique("schedule")) == 6
