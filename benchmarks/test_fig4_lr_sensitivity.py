"""Figure 4: final error against the initial learning rate for each schedule."""

from bench_utils import emit, run_once
from helpers import artifact_result, artifact_store


def test_fig4_lr_sensitivity(benchmark):
    result = run_once(benchmark, lambda: artifact_result("fig4"))
    emit("fig4_lr_sensitivity", result.as_text())
    store = artifact_store("fig4")
    assert len(store.unique("learning_rate")) == 5  # multiples of 3 around the shared default
    assert len(store.unique("schedule")) == 6
    assert len(result.tables) == 2
